package rdf

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func snapTriple(i int) Triple {
	return T(
		IRI(fmt.Sprintf("http://example.org/s%d", i%97)),
		IRI(fmt.Sprintf("http://example.org/p%d", i%7)),
		Integer(int64(i)),
	)
}

func buildSnapGraph(t testing.TB, n int) *Graph {
	t.Helper()
	g := NewGraph()
	ts := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, snapTriple(i))
	}
	if added, err := g.AddBatch(ts); err != nil || added != n {
		t.Fatalf("AddBatch = (%d, %v), want (%d, nil)", added, err, n)
	}
	return g
}

func TestSnapshotIsolation(t *testing.T) {
	g := buildSnapGraph(t, 500)
	snap := g.Snapshot()
	before := snap.Triples()

	// Mutate the live graph in every way a writer can.
	extra := T(IRI("http://example.org/new"), IRI(RDFType), Literal("added"))
	g.MustAdd(extra)
	if !g.Remove(snapTriple(0)) {
		t.Fatal("Remove(existing) = false")
	}
	if _, err := g.AddBatch([]Triple{snapTriple(1000), snapTriple(1001)}); err != nil {
		t.Fatal(err)
	}

	if got := snap.Triples(); !reflect.DeepEqual(got, before) {
		t.Fatalf("snapshot changed after graph writes: %d triples, was %d", len(got), len(before))
	}
	if snap.Has(extra) {
		t.Fatal("snapshot sees triple added after Snapshot()")
	}
	if !snap.Has(snapTriple(0)) {
		t.Fatal("snapshot lost triple removed from the live graph")
	}
	if !g.Has(extra) || g.Has(snapTriple(0)) {
		t.Fatal("live graph does not reflect its own writes")
	}
}

func TestSnapshotAfterClear(t *testing.T) {
	g := buildSnapGraph(t, 50)
	snap := g.Snapshot()
	g.Clear()
	if g.Len() != 0 {
		t.Fatalf("Len after Clear = %d", g.Len())
	}
	if snap.Len() != 50 {
		t.Fatalf("snapshot Len after Clear = %d, want 50", snap.Len())
	}
}

func TestSnapshotTakenAndAge(t *testing.T) {
	g := buildSnapGraph(t, 1)
	snap := g.Snapshot()
	if snap.Taken().IsZero() {
		t.Fatal("Taken is zero")
	}
	if snap.Age() < 0 {
		t.Fatalf("Age = %v", snap.Age())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildSnapGraph(t, 300)
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}

	// Writes on either side must be invisible to the other.
	gOnly := T(IRI("http://example.org/g-only"), IRI(RDFType), Literal("g"))
	cOnly := T(IRI("http://example.org/c-only"), IRI(RDFType), Literal("c"))
	g.MustAdd(gOnly)
	c.MustAdd(cOnly)
	g.Remove(snapTriple(1))
	c.Remove(snapTriple(2))

	if c.Has(gOnly) || g.Has(cOnly) {
		t.Fatal("clone and original share writes")
	}
	if !c.Has(snapTriple(1)) || !g.Has(snapTriple(2)) {
		t.Fatal("removal leaked between clone and original")
	}

	// A clone of a clone must also be independent.
	cc := c.Clone()
	c.MustAdd(T(IRI("http://example.org/c2"), IRI(RDFType), Literal("x")))
	if cc.Has(T(IRI("http://example.org/c2"), IRI(RDFType), Literal("x"))) {
		t.Fatal("second-level clone shares writes")
	}
}

func TestCloneMatchesTriples(t *testing.T) {
	g := buildSnapGraph(t, 120)
	c := g.Clone()
	if !reflect.DeepEqual(c.Triples(), g.Triples()) {
		t.Fatal("clone triples differ from original")
	}
}

func TestCardinalityAndStats(t *testing.T) {
	g := NewGraph()
	s1, s2 := IRI("http://example.org/a"), IRI("http://example.org/b")
	p1, p2 := IRI("http://example.org/p"), IRI("http://example.org/q")
	o1, o2, o3 := Literal("x"), Literal("y"), Literal("z")
	for _, tr := range []Triple{
		T(s1, p1, o1), T(s1, p1, o2), T(s1, p2, o3),
		T(s2, p1, o1),
	} {
		g.MustAdd(tr)
	}

	var zero Term
	cases := []struct {
		s, p, o Term
		want    int
	}{
		{zero, zero, zero, 4},
		{s1, zero, zero, 3},
		{s2, zero, zero, 1},
		{zero, p1, zero, 3},
		{zero, p2, zero, 1},
		{zero, zero, o1, 2},
		{zero, zero, o3, 1},
		{s1, p1, zero, 2},
		{zero, p1, o1, 2},
		{s1, zero, o2, 1},
		{s1, p1, o1, 1},
		{s1, p1, o3, 0},
		{IRI("http://example.org/none"), zero, zero, 0},
	}
	for _, c := range cases {
		if got := g.Cardinality(c.s, c.p, c.o); got != c.want {
			t.Errorf("Cardinality(%v,%v,%v) = %d, want %d", c.s, c.p, c.o, got, c.want)
		}
		// Cardinality must agree with Count (which walks matches) and be
		// preserved by snapshots.
		if got := g.Count(c.s, c.p, c.o); got != c.want {
			t.Errorf("Count(%v,%v,%v) = %d, want %d", c.s, c.p, c.o, got, c.want)
		}
		if got := g.Snapshot().Cardinality(c.s, c.p, c.o); got != c.want {
			t.Errorf("Snapshot.Cardinality(%v,%v,%v) = %d, want %d", c.s, c.p, c.o, got, c.want)
		}
	}

	want := DatasetStats{Triples: 4, Subjects: 2, Predicates: 2, Objects: 3}
	if got := g.Stats(); got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
	if got := g.Snapshot().Stats(); got != want {
		t.Fatalf("Snapshot.Stats = %+v, want %+v", got, want)
	}

	// Stats must track removals, including dropping terms whose last
	// triple disappears.
	g.Remove(T(s2, p1, o1))
	want = DatasetStats{Triples: 3, Subjects: 1, Predicates: 2, Objects: 3}
	if got := g.Stats(); got != want {
		t.Fatalf("Stats after Remove = %+v, want %+v", got, want)
	}
	if got := g.Cardinality(zero, zero, o1); got != 1 {
		t.Fatalf("Cardinality(o1) after Remove = %d, want 1", got)
	}
}

func TestAddBatch(t *testing.T) {
	g := NewGraph()
	a := T(IRI("http://example.org/a"), IRI(RDFType), Literal("x"))
	b := T(IRI("http://example.org/b"), IRI(RDFType), Literal("y"))
	added, err := g.AddBatch([]Triple{a, b, a})
	if err != nil || added != 2 {
		t.Fatalf("AddBatch = (%d, %v), want (2, nil)", added, err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}

	// A malformed triple stops the batch and reports the count so far.
	bad := T(Literal("not-a-subject"), IRI(RDFType), Literal("z"))
	c := T(IRI("http://example.org/c"), IRI(RDFType), Literal("z"))
	added, err = g.AddBatch([]Triple{c, bad, a})
	if err == nil || added != 1 {
		t.Fatalf("AddBatch with malformed = (%d, %v), want (1, err)", added, err)
	}
	if !g.Has(c) {
		t.Fatal("triple before the malformed one was not added")
	}
}

func TestFirstObjectMinScan(t *testing.T) {
	g := NewGraph()
	s, p := IRI("http://example.org/s"), IRI("http://example.org/p")
	if got := g.FirstObject(s, p); !got.IsZero() {
		t.Fatalf("FirstObject on empty = %v, want zero", got)
	}
	for _, v := range []string{"delta", "alpha", "charlie", "bravo"} {
		g.MustAdd(T(s, p, Literal(v)))
	}
	g.MustAdd(T(s, IRI("http://example.org/other"), Literal("aaa")))
	if got, want := g.FirstObject(s, p), Literal("alpha"); got != want {
		t.Fatalf("FirstObject = %v, want %v", got, want)
	}
	// IRIs sort before literals under term order (kind-major).
	g.MustAdd(T(s, p, IRI("http://example.org/zzz")))
	if got, want := g.FirstObject(s, p), IRI("http://example.org/zzz"); got != want {
		t.Fatalf("FirstObject with IRI object = %v, want %v", got, want)
	}
	if got := g.Snapshot().FirstObject(s, p); got != IRI("http://example.org/zzz") {
		t.Fatalf("Snapshot.FirstObject = %v", got)
	}
}

// TestWriterNotBlockedBySnapshotRead proves the core isolation property
// deterministically: a writer completes while a snapshot iteration is
// parked mid-stream. With the old Clone/RLock designs the writer would
// deadlock or wait for the reader to finish.
func TestWriterNotBlockedBySnapshotRead(t *testing.T) {
	g := buildSnapGraph(t, 100)
	snap := g.Snapshot()

	readerEntered := make(chan struct{})
	writerDone := make(chan struct{})
	release := make(chan struct{})

	go func() {
		first := true
		snap.ForEachMatch(Term{}, Term{}, Term{}, func(Triple) bool {
			if first {
				first = false
				close(readerEntered)
				<-release // park mid-iteration while the writer runs
			}
			return true
		})
	}()

	<-readerEntered
	go func() {
		g.MustAdd(T(IRI("http://example.org/while-reading"), IRI(RDFType), Literal("w")))
		close(writerDone)
	}()

	select {
	case <-writerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked by an in-flight snapshot read")
	}
	close(release)
}

// TestConcurrentSnapshotReadsAndWrites exercises the copy-on-write paths
// under the race detector: many writers mutating while snapshot readers
// iterate concurrently.
func TestConcurrentSnapshotReadsAndWrites(t *testing.T) {
	g := buildSnapGraph(t, 200)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := snapTriple(10_000 + w*1000 + i%500)
				g.MustAdd(tr)
				g.Remove(tr)
			}
		}(w)
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := g.Snapshot()
				n := 0
				snap.ForEachMatch(Term{}, Term{}, Term{}, func(Triple) bool { n++; return true })
				if n != snap.Len() {
					t.Errorf("snapshot iterated %d triples, Len says %d", n, snap.Len())
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestTermAppendKey(t *testing.T) {
	// Terms that are pairwise distinct but have colliding naive
	// concatenations must produce distinct keys.
	terms := []Term{
		IRI("ab"), Literal("ab"), Blank("ab"),
		Literal("a"), Literal("b"),
		TypedLiteral("a", "b"),
		TypedLiteral("1", XSDInteger), TypedLiteral("1", XSDDouble),
		LangLiteral("ab", "en"), LangLiteral("ab", "de"), Literal("aben"),
		{},
	}
	seen := make(map[string]Term)
	for _, tm := range terms {
		k := string(tm.AppendKey(nil))
		if prev, dup := seen[k]; dup {
			t.Fatalf("AppendKey collision between %v and %v: %q", prev, tm, k)
		}
		seen[k] = tm
	}
	// Appending must extend, not replace.
	buf := []byte("prefix")
	out := IRI("x").AppendKey(buf)
	if string(out[:6]) != "prefix" {
		t.Fatalf("AppendKey clobbered prefix: %q", out)
	}
}
