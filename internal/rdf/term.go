// Package rdf implements the RDF data model used throughout Qurator:
// terms (IRIs, literals, blank nodes), triples, and an indexed in-memory
// graph with N-Triples serialization.
//
// The Qurator framework (VLDB 2006) stores quality annotations as a graph
// of RDF statements: data items are wrapped as URIs (typically LSIDs),
// annotated with literal-encoded evidence values, and typed against the IQ
// ontology via rdf:type. This package is the storage substrate for the
// annotation repositories (internal/annotstore), the ontology model
// (internal/ontology) and the semantic binding registry (internal/binding).
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF term.
type TermKind uint8

const (
	// KindIRI identifies a named resource, e.g. <urn:lsid:uniprot.org:uniprot:P30089>.
	KindIRI TermKind = iota + 1
	// KindLiteral identifies a literal value, optionally typed or language-tagged.
	KindLiteral
	// KindBlank identifies a blank (anonymous) node, e.g. _:b1.
	KindBlank
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Well-known datatype and vocabulary IRIs.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"

	RDFType         = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClassOf  = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSLabel       = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSComment     = "http://www.w3.org/2000/01/rdf-schema#comment"
	RDFSDomain      = "http://www.w3.org/2000/01/rdf-schema#domain"
	RDFSRange       = "http://www.w3.org/2000/01/rdf-schema#range"
	OWLClass        = "http://www.w3.org/2002/07/owl#Class"
	OWLObjectProp   = "http://www.w3.org/2002/07/owl#ObjectProperty"
	OWLDatatypeProp = "http://www.w3.org/2002/07/owl#DatatypeProperty"
)

// Term is an RDF term. The zero Term is invalid; construct terms with
// IRI, Literal, TypedLiteral, Integer, Double, Boolean, or Blank.
//
// Terms are small value types designed for use as map keys; two terms
// compare equal with == exactly when they denote the same RDF term.
type Term struct {
	kind TermKind
	// value holds the IRI string, the literal lexical form, or the blank
	// node label depending on kind.
	value string
	// datatype holds the datatype IRI for literals ("" means xsd:string
	// unless lang is set); unused for other kinds.
	datatype string
	// lang holds the language tag for language-tagged literals.
	lang string
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{kind: KindIRI, value: iri} }

// Literal returns a plain string literal term.
func Literal(lexical string) Term { return Term{kind: KindLiteral, value: lexical} }

// LangLiteral returns a language-tagged string literal.
func LangLiteral(lexical, lang string) Term {
	return Term{kind: KindLiteral, value: lexical, lang: lang}
}

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lexical, datatype string) Term {
	return Term{kind: KindLiteral, value: lexical, datatype: datatype}
}

// Integer returns an xsd:integer literal.
func Integer(v int64) Term {
	return TypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// Double returns an xsd:double literal.
func Double(v float64) Term {
	return TypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// Boolean returns an xsd:boolean literal.
func Boolean(v bool) Term {
	return TypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// Blank returns a blank node with the given label (without the "_:" prefix).
func Blank(label string) Term { return Term{kind: KindBlank, value: label} }

// Kind reports the term kind. The zero Term reports 0 (invalid).
func (t Term) Kind() TermKind { return t.kind }

// IsZero reports whether t is the invalid zero Term.
func (t Term) IsZero() bool { return t.kind == 0 }

// Value returns the IRI string, literal lexical form, or blank label.
func (t Term) Value() string { return t.value }

// Datatype returns the literal's datatype IRI. Plain literals report
// xsd:string; language-tagged literals report "".
func (t Term) Datatype() string {
	if t.kind != KindLiteral {
		return ""
	}
	if t.lang != "" {
		return ""
	}
	if t.datatype == "" {
		return XSDString
	}
	return t.datatype
}

// Lang returns the language tag of a language-tagged literal, or "".
func (t Term) Lang() string { return t.lang }

// IsIRI reports whether t is an IRI term.
func (t Term) IsIRI() bool { return t.kind == KindIRI }

// IsLiteral reports whether t is a literal term.
func (t Term) IsLiteral() bool { return t.kind == KindLiteral }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.kind == KindBlank }

// Float returns the numeric value of a numeric literal.
// It accepts xsd:double, xsd:integer, and any literal whose lexical form
// parses as a float.
func (t Term) Float() (float64, bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.value, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Int returns the integer value of an integer-valued literal.
func (t Term) Int() (int64, bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	n, err := strconv.ParseInt(t.value, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Bool returns the boolean value of an xsd:boolean literal.
func (t Term) Bool() (bool, bool) {
	if t.kind != KindLiteral {
		return false, false
	}
	b, err := strconv.ParseBool(t.value)
	if err != nil {
		return false, false
	}
	return b, true
}

// AppendKey appends a compact, collision-free encoding of the term to buf
// and returns the extended slice. It is the allocation-light alternative
// to String() for building composite dedup keys (e.g. SPARQL DISTINCT):
// each field is length-prefixed so distinct terms never collide.
func (t Term) AppendKey(buf []byte) []byte {
	buf = append(buf, byte(t.kind))
	buf = strconv.AppendUint(buf, uint64(len(t.value)), 10)
	buf = append(buf, ':')
	buf = append(buf, t.value...)
	buf = strconv.AppendUint(buf, uint64(len(t.datatype)), 10)
	buf = append(buf, ':')
	buf = append(buf, t.datatype...)
	buf = append(buf, t.lang...)
	return buf
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.kind {
	case KindIRI:
		return "<" + t.value + ">"
	case KindBlank:
		return "_:" + t.value
	case KindLiteral:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.value))
		b.WriteByte('"')
		if t.lang != "" {
			b.WriteByte('@')
			b.WriteString(t.lang)
		} else if t.datatype != "" && t.datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return "<<invalid term>>"
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	// Iterate bytes, not runes: literals may carry arbitrary byte
	// sequences and must round-trip unchanged.
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("rdf: dangling escape in literal %q", s)
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case 'u':
			if i+4 >= len(s) {
				return "", fmt.Errorf("rdf: truncated \\u escape in literal %q", s)
			}
			code, err := strconv.ParseUint(s[i+1:i+5], 16, 32)
			if err != nil {
				return "", fmt.Errorf("rdf: bad \\u escape in literal %q: %v", s, err)
			}
			b.WriteRune(rune(code))
			i += 4
		default:
			return "", fmt.Errorf("rdf: unknown escape \\%c in literal %q", s[i], s)
		}
	}
	return b.String(), nil
}
