package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind TermKind
		val  string
		dt   string
		lang string
	}{
		{"iri", IRI("urn:x:a"), KindIRI, "urn:x:a", "", ""},
		{"plain literal", Literal("hello"), KindLiteral, "hello", XSDString, ""},
		{"typed literal", TypedLiteral("3.5", XSDDouble), KindLiteral, "3.5", XSDDouble, ""},
		{"lang literal", LangLiteral("ciao", "it"), KindLiteral, "ciao", "", "it"},
		{"integer", Integer(42), KindLiteral, "42", XSDInteger, ""},
		{"double", Double(2.5), KindLiteral, "2.5", XSDDouble, ""},
		{"boolean", Boolean(true), KindLiteral, "true", XSDBoolean, ""},
		{"blank", Blank("b1"), KindBlank, "b1", "", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind() != c.kind {
				t.Errorf("Kind = %v, want %v", c.term.Kind(), c.kind)
			}
			if c.term.Value() != c.val {
				t.Errorf("Value = %q, want %q", c.term.Value(), c.val)
			}
			if c.term.Datatype() != c.dt {
				t.Errorf("Datatype = %q, want %q", c.term.Datatype(), c.dt)
			}
			if c.term.Lang() != c.lang {
				t.Errorf("Lang = %q, want %q", c.term.Lang(), c.lang)
			}
		})
	}
}

func TestTermZeroValue(t *testing.T) {
	var z Term
	if !z.IsZero() {
		t.Fatal("zero Term should report IsZero")
	}
	if IRI("x").IsZero() {
		t.Fatal("IRI should not report IsZero")
	}
}

func TestTermNumericAccessors(t *testing.T) {
	if f, ok := Double(3.25).Float(); !ok || f != 3.25 {
		t.Errorf("Double(3.25).Float() = %v, %v", f, ok)
	}
	if f, ok := Integer(7).Float(); !ok || f != 7 {
		t.Errorf("Integer(7).Float() = %v, %v", f, ok)
	}
	if _, ok := Literal("abc").Float(); ok {
		t.Error("non-numeric literal should not parse as float")
	}
	if _, ok := IRI("urn:x").Float(); ok {
		t.Error("IRI should not parse as float")
	}
	if n, ok := Integer(-9).Int(); !ok || n != -9 {
		t.Errorf("Integer(-9).Int() = %v, %v", n, ok)
	}
	if b, ok := Boolean(true).Bool(); !ok || !b {
		t.Errorf("Boolean(true).Bool() = %v, %v", b, ok)
	}
}

func TestTermEqualityAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[IRI("urn:a")] = 1
	m[Literal("urn:a")] = 2
	m[TypedLiteral("urn:a", XSDDouble)] = 3
	if len(m) != 3 {
		t.Fatalf("distinct terms collided: %v", m)
	}
	if m[IRI("urn:a")] != 1 {
		t.Error("IRI key lookup failed")
	}
}

func TestTermStringNTriples(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{IRI("urn:lsid:uniprot.org:uniprot:P30089"), "<urn:lsid:uniprot.org:uniprot:P30089>"},
		{Literal("plain"), `"plain"`},
		{Literal(`with "quotes" and \slash`), `"with \"quotes\" and \\slash"`},
		{Literal("line\nbreak"), `"line\nbreak"`},
		{TypedLiteral("3.5", XSDDouble), `"3.5"^^<` + XSDDouble + `>`},
		{LangLiteral("ciao", "it"), `"ciao"@it`},
		{Blank("b7"), "_:b7"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLiteralEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		unescaped, err := unescapeLiteral(escapeLiteral(s))
		return err == nil && unescaped == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	terms := []Term{
		IRI("http://example.org/x"),
		Literal("hello world"),
		Literal(`quote " backslash \ tab	end`),
		TypedLiteral("42", XSDInteger),
		TypedLiteral("1.5e3", XSDDouble),
		LangLiteral("bonjour", "fr"),
		Blank("node1"),
	}
	for _, term := range terms {
		parsed, err := ParseTerm(term.String())
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", term.String(), err)
			continue
		}
		if parsed != term {
			t.Errorf("round trip %q: got %v, want %v", term.String(), parsed, term)
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	bad := []string{"", "<unterminated", `"unterminated`, "_:", "plainword", `"lit"@`, `"lit"^^x`, "<a> <b>"}
	for _, s := range bad {
		if _, err := ParseTerm(s); err == nil {
			t.Errorf("ParseTerm(%q) should fail", s)
		}
	}
}

func TestTermKindString(t *testing.T) {
	cases := map[TermKind]string{
		KindIRI:     "iri",
		KindLiteral: "literal",
		KindBlank:   "blank",
		TermKind(9): "TermKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("TermKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !Blank("b").IsBlank() || IRI("u").IsBlank() || Literal("l").IsBlank() {
		t.Error("IsBlank wrong")
	}
	if !IRI("u").IsIRI() || !Literal("l").IsLiteral() {
		t.Error("IsIRI/IsLiteral wrong")
	}
	var z Term
	if z.String() != "<<invalid term>>" {
		t.Errorf("zero Term String = %q", z.String())
	}
}

func TestNonLiteralAccessorsMiss(t *testing.T) {
	if _, ok := IRI("u").Int(); ok {
		t.Error("Int on IRI should miss")
	}
	if _, ok := IRI("u").Bool(); ok {
		t.Error("Bool on IRI should miss")
	}
	if _, ok := Literal("abc").Int(); ok {
		t.Error("Int on non-numeric literal should miss")
	}
	if _, ok := Literal("abc").Bool(); ok {
		t.Error("Bool on non-boolean literal should miss")
	}
}

func TestUnescapeLiteralEscapes(t *testing.T) {
	cases := map[string]string{
		`a\\b`:     "a\\b",
		`a\"b`:     `a"b`,
		`a\nb`:     "a\nb",
		`a\rb`:     "a\rb",
		`a\tb`:     "a\tb",
		`a\u0041b`: "aAb",
		`plain`:    "plain",
	}
	for in, want := range cases {
		got, err := unescapeLiteral(in)
		if err != nil || got != want {
			t.Errorf("unescapeLiteral(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	bad := []string{`a\`, `a\u12`, `a\u12ZZ`, `a\q`}
	for _, in := range bad {
		if _, err := unescapeLiteral(in); err == nil {
			t.Errorf("unescapeLiteral(%q) should fail", in)
		}
	}
}

func TestCompareTerms(t *testing.T) {
	a, b := IRI("urn:a"), IRI("urn:b")
	if CompareTerms(a, b) != -1 || CompareTerms(b, a) != 1 || CompareTerms(a, a) != 0 {
		t.Error("CompareTerms ordering on IRIs is wrong")
	}
	// Kind ordering: IRI < literal < blank.
	if CompareTerms(IRI("z"), Literal("a")) != -1 {
		t.Error("IRI should sort before literal")
	}
	if CompareTerms(Literal("z"), Blank("a")) != -1 {
		t.Error("literal should sort before blank")
	}
}
