package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTurtle writes the graph in a compact Turtle subset: prefix
// declarations, subject grouping with ';' separators, and 'a' for
// rdf:type. The output is for human inspection and documentation
// (annotation graphs, the IQ model); ReadNTriples remains the canonical
// machine format.
//
// prefixes maps prefix names to namespace IRIs (e.g. "q" →
// "http://qurator.org/iq#"). IRIs outside every namespace are written in
// angle brackets.
func WriteTurtle(w io.Writer, g *Graph, prefixes map[string]string) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(prefixes))
	for n := range prefixes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(bw, "@prefix %s: <%s> .\n", n, prefixes[n])
	}
	if len(names) > 0 {
		bw.WriteByte('\n')
	}

	term := func(t Term) string {
		if t.IsIRI() {
			if t.Value() == RDFType {
				return "a"
			}
			for _, n := range names {
				ns := prefixes[n]
				if local, ok := strings.CutPrefix(t.Value(), ns); ok && isTurtleLocal(local) {
					return n + ":" + local
				}
			}
		}
		return t.String()
	}

	// Group triples by subject, predicates sorted.
	triples := g.Triples()
	bySubject := map[Term][]Triple{}
	var subjects []Term
	for _, t := range triples {
		if _, ok := bySubject[t.Subject]; !ok {
			subjects = append(subjects, t.Subject)
		}
		bySubject[t.Subject] = append(bySubject[t.Subject], t)
	}
	for _, s := range subjects {
		ts := bySubject[s]
		fmt.Fprintf(bw, "%s\n", term(s))
		for i, t := range ts {
			sep := " ;"
			if i == len(ts)-1 {
				sep = " ."
			}
			fmt.Fprintf(bw, "    %s %s%s\n", term(t.Predicate), term(t.Object), sep)
		}
	}
	return bw.Flush()
}

// isTurtleLocal reports whether a local name is safe to emit unquoted.
func isTurtleLocal(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '-' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}
