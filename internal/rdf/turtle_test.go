package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTurtle(t *testing.T) {
	g := NewGraph()
	q := func(l string) Term { return IRI("http://qurator.org/iq#" + l) }
	g.MustAdd(T(IRI("urn:lsid:x.org:ns:P1"), IRI(RDFType), q("ImprintHitEntry")))
	g.MustAdd(T(IRI("urn:lsid:x.org:ns:P1"), q("containsEvidence"), IRI("urn:lsid:x.org:ns:P1#ev")))
	g.MustAdd(T(IRI("urn:lsid:x.org:ns:P1#ev"), q("evidenceValue"), Double(0.9)))

	var buf bytes.Buffer
	err := WriteTurtle(&buf, g, map[string]string{"q": "http://qurator.org/iq#"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"@prefix q: <http://qurator.org/iq#> .",
		"a q:ImprintHitEntry",    // rdf:type abbreviated, prefix applied
		"q:containsEvidence",     // prefixed predicate
		"<urn:lsid:x.org:ns:P1>", // non-namespace IRI in brackets
		" .",                     // statement terminators
	} {
		if !strings.Contains(out, want) {
			t.Errorf("turtle missing %q:\n%s", want, out)
		}
	}
	// The evidence-node IRI contains '#', so its local name is unsafe and
	// it must stay bracketed even though urn: isn't a declared prefix.
	if strings.Contains(out, "q:containsEvidence q:") {
		t.Errorf("unsafe local name was prefixed:\n%s", out)
	}
}

func TestWriteTurtleNoPrefixes(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(IRI("urn:a"), IRI("urn:p"), Literal("x")))
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `<urn:a>`) || strings.Contains(buf.String(), "@prefix") {
		t.Errorf("turtle without prefixes wrong:\n%s", buf.String())
	}
}

func TestIsTurtleLocal(t *testing.T) {
	good := []string{"HitRatio", "a_b-c", "x1"}
	bad := []string{"", "with space", "a#b", "a/b", "ünïcode"}
	for _, s := range good {
		if !isTurtleLocal(s) {
			t.Errorf("isTurtleLocal(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isTurtleLocal(s) {
			t.Errorf("isTurtleLocal(%q) = true", s)
		}
	}
}
