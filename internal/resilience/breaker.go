package resilience

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests fail fast without touching the endpoint until the
	// cooldown elapses.
	Open
	// HalfOpen: a limited number of probe requests are admitted; enough
	// successes close the breaker, any failure re-opens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterises one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting
	// half-open probes (default 500ms).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe requests half-open
	// admits (default 1); SuccessesToClose successful probes close the
	// breaker again (default 1).
	HalfOpenProbes   int
	SuccessesToClose int
}

// Normalise returns a copy of c with unset fields defaulted.
func (c BreakerConfig) Normalise() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.HalfOpenProbes < 1 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose < 1 {
		c.SuccessesToClose = 1
	}
	return c
}

// ErrOpen is returned (wrapped in *OpenError) when a breaker rejects a
// call without attempting it.
var ErrOpen = fmt.Errorf("resilience: circuit breaker open")

// OpenError reports a fast-failed call and which endpoint's breaker
// rejected it.
type OpenError struct {
	// Endpoint identifies the broken dependency (method+host+path for the
	// HTTP transport).
	Endpoint string
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: circuit breaker open for %s", e.Endpoint)
}

// Unwrap makes errors.Is(err, ErrOpen) work.
func (e *OpenError) Unwrap() error { return ErrOpen }

// Breaker is one circuit breaker: closed → open on consecutive failures,
// open → half-open after a cooldown, half-open → closed on successful
// probes (or back to open on a failed one). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu                sync.Mutex
	state             BreakerState
	failures          int // consecutive failures while closed
	probes            int // in-flight probes while half-open
	probeSuccess      int // successful probes this half-open episode
	openedAt          time.Time
	opens, rejections int
	notify            func(from, to BreakerState)
}

// OnTransition registers fn to run on every state change (with from ≠
// to), while the breaker's lock is held — fn must not call back into
// the breaker. The transport uses it to keep state gauges and
// transition counters current.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.notify = fn
}

// setStateLocked changes state and fires the transition hook; the
// caller holds b.mu.
func (b *Breaker) setStateLocked(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.notify != nil {
		b.notify(from, to)
	}
}

// NewBreaker returns a closed breaker. now may be nil (wall clock).
func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg.Normalise(), now: now}
}

// Allow reports whether a call may proceed. Rejected calls MUST NOT call
// Record*; admitted calls MUST call exactly one of RecordSuccess or
// RecordFailure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.setStateLocked(HalfOpen)
			b.probes = 0
			b.probeSuccess = 0
			// fall through into the half-open admission check below
		} else {
			b.rejections++
			return false
		}
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejections++
			return false
		}
		b.probes++
		return true
	}
	return true
}

// RecordSuccess reports a successful admitted call.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probes--
		b.probeSuccess++
		if b.probeSuccess >= b.cfg.SuccessesToClose {
			b.setStateLocked(Closed)
			b.failures = 0
		}
	}
}

// RecordFailure reports a failed admitted call.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probes--
		b.trip()
	}
}

// trip opens the breaker; the caller holds b.mu.
func (b *Breaker) trip() {
	b.setStateLocked(Open)
	b.openedAt = b.now()
	b.failures = 0
	b.opens++
}

// State returns the breaker's current position (advancing open →
// half-open if the cooldown has elapsed, so observers see the effective
// state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Stats reports how often the breaker opened and how many calls it
// fast-failed — the observability hook chaos tests assert on.
func (b *Breaker) Stats() (opens, rejections int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.rejections
}
