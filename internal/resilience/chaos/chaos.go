// Package chaos is Qurator's fault-injection harness: an
// http.RoundTripper decorator that makes a healthy test deployment
// misbehave in controlled, reproducible ways — transport errors, added
// latency, truncated bodies, corrupt envelopes, and hard outages. The
// resilience layer's tests drive the Figure 5 distributed deployment
// through it to prove circuit breakers open and recover, retries stay
// within budget, and degraded-mode quality views keep deciding.
//
// Every probabilistic choice draws from one seeded RNG, so a failing
// scenario replays exactly from its seed.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the injected fault mix. All rates are probabilities in
// [0, 1]; zero-valued Config injects nothing.
type Config struct {
	// Seed seeds the fault RNG (0 selects a fixed default seed).
	Seed int64
	// ErrorRate is the probability a request fails outright with an
	// injected transport error (the request never reaches the base).
	ErrorRate float64
	// LatencyRate is the probability Latency is added before forwarding.
	LatencyRate float64
	Latency     time.Duration
	// TruncateRate is the probability the response body is cut in half
	// with its Content-Length left claiming the full size — a mid-body
	// connection reset as the client sees it.
	TruncateRate float64
	// CorruptRate is the probability response-body XML is mangled into a
	// non-well-formed document — an adversarial envelope.
	CorruptRate float64
	// Match limits injection to matching requests (nil = all requests).
	Match func(*http.Request) bool
}

// Stats counts what the transport injected, for test assertions.
type Stats struct {
	Requests  int64
	Errors    int64
	Delays    int64
	Truncated int64
	Corrupted int64
	Outages   int64
}

// ErrInjected is the error class of every chaos-injected transport
// failure.
var ErrInjected = fmt.Errorf("chaos: injected transport error")

// Transport injects faults in front of a base RoundTripper.
type Transport struct {
	base http.RoundTripper
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand

	down  atomic.Bool
	stats struct {
		requests, errors, delays, truncated, corrupted, outages atomic.Int64
	}
}

// New wraps base (nil = http.DefaultTransport) with fault injection.
func New(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{base: base, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetDown switches a hard outage on or off: while down, every matching
// request fails, deterministically — how tests force a breaker open and
// then let the dependency heal.
func (t *Transport) SetDown(down bool) { t.down.Store(down) }

// Stats snapshots the injection counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:  t.stats.requests.Load(),
		Errors:    t.stats.errors.Load(),
		Delays:    t.stats.delays.Load(),
		Truncated: t.stats.truncated.Load(),
		Corrupted: t.stats.corrupted.Load(),
		Outages:   t.stats.outages.Load(),
	}
}

// roll draws one uniform variate under the lock, keeping the stream
// deterministic even when requests race.
func (t *Transport) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64()
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.cfg.Match != nil && !t.cfg.Match(req) {
		return t.base.RoundTrip(req)
	}
	t.stats.requests.Add(1)
	if t.down.Load() {
		t.stats.outages.Add(1)
		return nil, fmt.Errorf("%w: %s %s: endpoint down", ErrInjected, req.Method, req.URL.Path)
	}
	if t.cfg.ErrorRate > 0 && t.roll() < t.cfg.ErrorRate {
		t.stats.errors.Add(1)
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	if t.cfg.LatencyRate > 0 && t.roll() < t.cfg.LatencyRate {
		t.stats.delays.Add(1)
		select {
		case <-time.After(t.cfg.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.cfg.TruncateRate > 0 && t.roll() < t.cfg.TruncateRate {
		t.stats.truncated.Add(1)
		return truncateBody(resp)
	}
	if t.cfg.CorruptRate > 0 && t.roll() < t.cfg.CorruptRate {
		t.stats.corrupted.Add(1)
		return corruptBody(resp)
	}
	return resp, nil
}

// truncateBody replaces the body with its first half while keeping the
// original Content-Length, so readers observe an unexpected EOF.
func truncateBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	full := int64(len(data))
	resp.Body = io.NopCloser(bytes.NewReader(data[:len(data)/2]))
	resp.ContentLength = full
	return resp, nil
}

// corruptBody mangles the payload into non-well-formed XML: closing
// brackets vanish and a stray NUL is appended.
func corruptBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	mangled := strings.ReplaceAll(string(data), ">", "")
	mangled += "\x00<unclosed"
	resp.Body = io.NopCloser(strings.NewReader(mangled))
	resp.ContentLength = int64(len(mangled))
	return resp, nil
}

var _ http.RoundTripper = (*Transport)(nil)
