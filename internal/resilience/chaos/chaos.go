// Package chaos is Qurator's fault-injection harness: an
// http.RoundTripper decorator that makes a healthy test deployment
// misbehave in controlled, reproducible ways — transport errors, added
// latency, truncated bodies, corrupt envelopes, and hard outages. The
// resilience layer's tests drive the Figure 5 distributed deployment
// through it to prove circuit breakers open and recover, retries stay
// within budget, and degraded-mode quality views keep deciding.
//
// Every probabilistic choice draws from one seeded RNG, so a failing
// scenario replays exactly from its seed.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the injected fault mix. All rates are probabilities in
// [0, 1]; zero-valued Config injects nothing.
type Config struct {
	// Seed seeds the fault RNG (0 selects a fixed default seed).
	Seed int64
	// ErrorRate is the probability a request fails outright with an
	// injected transport error (the request never reaches the base).
	ErrorRate float64
	// LatencyRate is the probability Latency is added before forwarding.
	LatencyRate float64
	Latency     time.Duration
	// RefuseRate is the probability a request fails as if the peer's
	// port were closed — a connection-refused dial error, distinct from
	// ErrorRate's mid-exchange transport failure. The request never
	// reaches the base.
	RefuseRate float64
	// TruncateRate is the probability the response body is cut in half
	// with its Content-Length left claiming the full size — a mid-body
	// connection reset as the client sees it.
	TruncateRate float64
	// CorruptRate is the probability response-body XML is mangled into a
	// non-well-formed document — an adversarial envelope.
	CorruptRate float64
	// Match limits injection to matching requests (nil = all requests).
	Match func(*http.Request) bool
}

// Stats counts what the transport injected, for test assertions.
type Stats struct {
	Requests    int64
	Errors      int64
	Refused     int64
	Delays      int64
	Truncated   int64
	Corrupted   int64
	Outages     int64
	Partitioned int64
}

// ErrInjected is the error class of every chaos-injected transport
// failure.
var ErrInjected = fmt.Errorf("chaos: injected transport error")

// ErrRefused is the error class of injected connection-refused failures
// (RefuseRate and Partition): the peer looked reachable a moment ago and
// now the dial itself fails — the failure mode cluster membership must
// detect. It unwraps to ErrInjected so existing chaos assertions still
// match.
var ErrRefused = fmt.Errorf("%w: connection refused", ErrInjected)

// Transport injects faults in front of a base RoundTripper.
type Transport struct {
	base http.RoundTripper
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand

	down atomic.Bool

	partMu      sync.Mutex
	partitioned map[string]bool // req.URL.Host values currently unreachable

	stats struct {
		requests, errors, refused, delays, truncated, corrupted, outages, partitions atomic.Int64
	}
}

// New wraps base (nil = http.DefaultTransport) with fault injection.
func New(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{base: base, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetDown switches a hard outage on or off: while down, every matching
// request fails, deterministically — how tests force a breaker open and
// then let the dependency heal.
func (t *Transport) SetDown(down bool) { t.down.Store(down) }

// Partition makes the given hosts (req.URL.Host values, e.g.
// "127.0.0.1:9091") unreachable: every request to them fails with
// ErrRefused, deterministically, as if the process died or a network
// partition cut the link. Hosts accumulate across calls; Heal reconnects
// everything. Unlike SetDown, requests to other hosts are unaffected —
// this is the asymmetric failure membership protocols must survive.
func (t *Transport) Partition(hosts ...string) {
	t.partMu.Lock()
	defer t.partMu.Unlock()
	if t.partitioned == nil {
		t.partitioned = make(map[string]bool, len(hosts))
	}
	for _, h := range hosts {
		t.partitioned[h] = true
	}
}

// Heal removes the given hosts from the partition (no hosts = heal all).
func (t *Transport) Heal(hosts ...string) {
	t.partMu.Lock()
	defer t.partMu.Unlock()
	if len(hosts) == 0 {
		t.partitioned = nil
		return
	}
	for _, h := range hosts {
		delete(t.partitioned, h)
	}
}

// isPartitioned reports whether host is currently cut off.
func (t *Transport) isPartitioned(host string) bool {
	t.partMu.Lock()
	defer t.partMu.Unlock()
	return t.partitioned[host]
}

// Stats snapshots the injection counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:    t.stats.requests.Load(),
		Errors:      t.stats.errors.Load(),
		Refused:     t.stats.refused.Load(),
		Delays:      t.stats.delays.Load(),
		Truncated:   t.stats.truncated.Load(),
		Corrupted:   t.stats.corrupted.Load(),
		Outages:     t.stats.outages.Load(),
		Partitioned: t.stats.partitions.Load(),
	}
}

// roll draws one uniform variate under the lock, keeping the stream
// deterministic even when requests race.
func (t *Transport) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64()
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.cfg.Match != nil && !t.cfg.Match(req) {
		return t.base.RoundTrip(req)
	}
	t.stats.requests.Add(1)
	if t.down.Load() {
		t.stats.outages.Add(1)
		return nil, fmt.Errorf("%w: %s %s: endpoint down", ErrInjected, req.Method, req.URL.Path)
	}
	if t.isPartitioned(req.URL.Host) {
		t.stats.partitions.Add(1)
		return nil, fmt.Errorf("%w: dial tcp %s", ErrRefused, req.URL.Host)
	}
	if t.cfg.RefuseRate > 0 && t.roll() < t.cfg.RefuseRate {
		t.stats.refused.Add(1)
		return nil, fmt.Errorf("%w: dial tcp %s", ErrRefused, req.URL.Host)
	}
	if t.cfg.ErrorRate > 0 && t.roll() < t.cfg.ErrorRate {
		t.stats.errors.Add(1)
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	if t.cfg.LatencyRate > 0 && t.roll() < t.cfg.LatencyRate {
		t.stats.delays.Add(1)
		select {
		case <-time.After(t.cfg.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.cfg.TruncateRate > 0 && t.roll() < t.cfg.TruncateRate {
		t.stats.truncated.Add(1)
		return truncateBody(resp)
	}
	if t.cfg.CorruptRate > 0 && t.roll() < t.cfg.CorruptRate {
		t.stats.corrupted.Add(1)
		return corruptBody(resp)
	}
	return resp, nil
}

// truncateBody replaces the body with its first half while keeping the
// original Content-Length, so readers observe an unexpected EOF.
func truncateBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	full := int64(len(data))
	resp.Body = io.NopCloser(bytes.NewReader(data[:len(data)/2]))
	resp.ContentLength = full
	return resp, nil
}

// corruptBody mangles the payload into non-well-formed XML: closing
// brackets vanish and a stray NUL is appended.
func corruptBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	mangled := strings.ReplaceAll(string(data), ">", "")
	mangled += "\x00<unclosed"
	resp.Body = io.NopCloser(strings.NewReader(mangled))
	resp.ContentLength = int64(len(mangled))
	return resp, nil
}

var _ http.RoundTripper = (*Transport)(nil)
