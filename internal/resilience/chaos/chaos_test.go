package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qurator/internal/resilience"
)

func newEchoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, "<Envelope service=\"echo\"><DataSet/></Envelope>")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func doGet(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestInjectedErrorRateIsDeterministic(t *testing.T) {
	srv := newEchoServer(t)
	run := func() (errs int) {
		tr := New(http.DefaultTransport, Config{Seed: 7, ErrorRate: 0.3})
		for i := 0; i < 50; i++ {
			resp, err := doGet(t, tr, srv.URL)
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error class: %v", err)
				}
				errs++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return errs
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault counts: %d vs %d", a, b)
	}
	if a < 5 || a > 25 {
		t.Errorf("error count %d wildly off a 30%% rate over 50 calls", a)
	}
}

func TestOutageFailsEveryRequest(t *testing.T) {
	srv := newEchoServer(t)
	tr := New(http.DefaultTransport, Config{Seed: 1})
	tr.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := doGet(t, tr, srv.URL); !errors.Is(err, ErrInjected) {
			t.Fatalf("outage call %d: err = %v, want injected", i, err)
		}
	}
	tr.SetDown(false)
	resp, err := doGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	resp.Body.Close()
	st := tr.Stats()
	if st.Outages != 3 {
		t.Errorf("outages = %d, want 3", st.Outages)
	}
}

func TestTruncationObservableByReader(t *testing.T) {
	srv := newEchoServer(t)
	tr := New(http.DefaultTransport, Config{Seed: 1, TruncateRate: 1})
	resp, err := doGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if int64(len(data)) >= resp.ContentLength {
		t.Fatalf("body not truncated: %d bytes of claimed %d", len(data), resp.ContentLength)
	}
}

func TestCorruptionBreaksXML(t *testing.T) {
	srv := newEchoServer(t)
	tr := New(http.DefaultTransport, Config{Seed: 1, CorruptRate: 1})
	resp, err := doGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(data), "<Envelope service=\"echo\">") {
		t.Fatal("body not corrupted")
	}
}

func TestMatchScopesInjection(t *testing.T) {
	srv := newEchoServer(t)
	tr := New(http.DefaultTransport, Config{
		Seed:      1,
		ErrorRate: 1,
		Match:     func(r *http.Request) bool { return strings.Contains(r.URL.Path, "/services/") },
	})
	// Non-matching path sails through even at 100% error rate.
	resp, err := doGet(t, tr, srv.URL+"/repositories")
	if err != nil {
		t.Fatalf("non-matching request failed: %v", err)
	}
	resp.Body.Close()
	if _, err := doGet(t, tr, srv.URL+"/services/score"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching request: err = %v, want injected", err)
	}
}

func TestRefuseRateInjectsConnectionRefused(t *testing.T) {
	srv := newEchoServer(t)
	tr := New(http.DefaultTransport, Config{Seed: 1, RefuseRate: 1})
	_, err := doGet(t, tr, srv.URL)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrRefused must unwrap to ErrInjected, got %v", err)
	}
	if st := tr.Stats(); st.Refused != 1 {
		t.Errorf("refused = %d, want 1", st.Refused)
	}
}

// TestPartitionCutsOnlyNamedHosts proves the asymmetric failure mode: a
// partitioned peer is unreachable while its neighbours stay healthy, and
// healing restores it — exactly the suspect→dead→rejoin sequence cluster
// membership probes must observe.
func TestPartitionCutsOnlyNamedHosts(t *testing.T) {
	a, b := newEchoServer(t), newEchoServer(t)
	tr := New(http.DefaultTransport, Config{Seed: 1})

	hostOf := func(url string) string { return strings.TrimPrefix(url, "http://") }
	tr.Partition(hostOf(a.URL))

	if _, err := doGet(t, tr, a.URL); !errors.Is(err, ErrRefused) {
		t.Fatalf("partitioned host: err = %v, want ErrRefused", err)
	}
	resp, err := doGet(t, tr, b.URL)
	if err != nil {
		t.Fatalf("unpartitioned host failed: %v", err)
	}
	resp.Body.Close()

	tr.Heal()
	resp, err = doGet(t, tr, a.URL)
	if err != nil {
		t.Fatalf("healed host still failing: %v", err)
	}
	resp.Body.Close()
	if st := tr.Stats(); st.Partitioned != 1 {
		t.Errorf("partitioned = %d, want 1", st.Partitioned)
	}
}

// TestResilientTransportSurvivesChaos is the layered integration check:
// the resilient transport stacked on the chaos transport keeps a flaky
// endpoint usable — every idempotent call eventually succeeds under a
// 30% injected error rate, with a deterministic seed and zero real sleep.
func TestResilientTransportSurvivesChaos(t *testing.T) {
	srv := newEchoServer(t)
	faulty := New(http.DefaultTransport, Config{Seed: 11, ErrorRate: 0.3, TruncateRate: 0.1})
	tr := resilience.NewTransport(faulty, resilience.Policy{
		MaxAttempts:      5,
		RetryBudgetRatio: 1,
		RetryBudgetBurst: 100,
		Breaker:          resilience.BreakerConfig{FailureThreshold: 50},
		Seed:             11,
	}.WithSleep(func(time.Duration, <-chan struct{}) bool { return true }))
	for i := 0; i < 40; i++ {
		resp, err := doGet(t, tr, srv.URL+"/services/echo")
		if err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("call %d: body read: %v", i, err)
		}
		if !strings.Contains(string(data), "Envelope") {
			t.Fatalf("call %d: unexpected body %q", i, data)
		}
	}
	if faulty.Stats().Errors == 0 {
		t.Fatal("chaos injected nothing; the test proved nothing")
	}
}
