// Package resilience makes Qurator's distributed service fabric survive
// the unreliability of the services it composes. The paper's deployment
// story (§5–§6, Figure 5) spreads QA services, annotators and annotation
// repositories across hosts, but says nothing about what happens when one
// of them is slow, flaky or down; an IQ system that dies when its own
// inputs degrade would fail its single purpose.
//
// The package supplies three layers:
//
//   - Transport: an http.RoundTripper decorator adding jittered
//     exponential backoff with a per-call retry budget, deadline
//     propagation, and a per-endpoint circuit breaker
//     (closed → open → half-open with probe requests). Retries are
//     applied only to requests that are idempotent — safe methods, or
//     requests explicitly marked via MarkIdempotent. Non-idempotent
//     annotation writes are never replayed at this layer: the transport
//     cannot know whether the lost response carried a committed write.
//
//   - Breaker: the circuit-breaker state machine itself, usable
//     standalone by non-HTTP callers.
//
//   - chaos (subpackage): a fault-injection RoundTripper for
//     deterministic, seeded failure testing — error rates, added latency,
//     truncated bodies, corrupt envelopes, and hard outages.
//
// All randomness (jitter, chaos) is drawn from seeded generators and all
// clocks are injectable, so every failure scenario replays exactly.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Policy configures the resilient transport. The zero value is usable:
// Normalise fills every unset knob with a production-shaped default.
type Policy struct {
	// MaxAttempts is the total number of tries per call, first attempt
	// included (default 3). 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff before jitter (default
	// 25ms); each further retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// AttemptTimeout, when positive, bounds each individual attempt with
	// context.WithTimeout. The caller's deadline always propagates; the
	// attempt deadline only ever tightens it.
	AttemptTimeout time.Duration
	// RetryBudgetRatio bounds retries to a fraction of requests seen
	// (default 0.2): a flapping dependency gets help, a dead one does not
	// get a retry storm. RetryBudgetBurst retries are always allowed so
	// cold starts can retry at all (default 10).
	RetryBudgetRatio float64
	RetryBudgetBurst int
	// Breaker configures the per-endpoint circuit breakers.
	Breaker BreakerConfig
	// Seed seeds the jitter RNG; 0 selects a fixed default seed, so runs
	// are deterministic unless the caller opts into their own seed.
	Seed int64
	// sleep and now are injectable for deterministic tests.
	sleep func(d time.Duration, done <-chan struct{}) bool
	now   func() time.Time
}

// Normalise returns a copy of p with every unset field defaulted.
func (p Policy) Normalise() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.RetryBudgetRatio <= 0 {
		p.RetryBudgetRatio = 0.2
	}
	if p.RetryBudgetBurst <= 0 {
		p.RetryBudgetBurst = 10
	}
	p.Breaker = p.Breaker.Normalise()
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.sleep == nil {
		p.sleep = func(d time.Duration, done <-chan struct{}) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return true
			case <-done:
				return false
			}
		}
	}
	if p.now == nil {
		p.now = time.Now
	}
	return p
}

// WithSleep returns a copy of p using fn to sleep between retries —
// deterministic tests pass a no-op that records requested durations.
// fn receives the backoff and a channel closed on cancellation; it
// reports false if the sleep was cut short.
func (p Policy) WithSleep(fn func(d time.Duration, done <-chan struct{}) bool) Policy {
	p.sleep = fn
	return p
}

// WithClock returns a copy of p using fn as the time source (breaker
// cooldowns); deterministic tests pass a manual clock.
func (p Policy) WithClock(fn func() time.Time) Policy {
	p.now = fn
	return p
}

// lockedRand is a seeded rand.Rand safe for concurrent use.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// backoffFor computes the jittered exponential backoff for the retry
// following attempt n (0-based): base·2ⁿ capped at max, scaled by a
// uniformly random factor in [0.5, 1.0) ("equal jitter") so synchronised
// clients de-synchronise without ever retrying immediately.
func backoffFor(base, max time.Duration, attempt int, rng *lockedRand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// Budget is a retry budget: it admits retries only while the cumulative
// retry count stays within burst + ratio·requests. Unlike a pure token
// bucket it needs no clock, so tests are exactly reproducible.
type Budget struct {
	mu       sync.Mutex
	ratio    float64
	burst    int
	requests int
	retries  int
}

// NewBudget returns a budget admitting burst retries up front plus
// ratio·requests over the lifetime of the transport.
func NewBudget(ratio float64, burst int) *Budget {
	return &Budget{ratio: ratio, burst: burst}
}

// Request records one first attempt.
func (b *Budget) Request() {
	b.mu.Lock()
	b.requests++
	b.mu.Unlock()
}

// Allow reports whether one more retry fits the budget, consuming it.
func (b *Budget) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.fitsLocked() {
		return false
	}
	b.retries++
	return true
}

// fitsLocked reports whether one more retry fits; the caller holds b.mu.
// The ratio-funded allowance is floored so a fractional ratio never leaks
// an extra retry beyond the burst.
func (b *Budget) fitsLocked() bool {
	return b.retries < b.burst+int(b.ratio*float64(b.requests))
}

// Peek reports whether one more retry would fit, without consuming it.
func (b *Budget) Peek() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fitsLocked()
}

// Spent returns the retries consumed so far.
func (b *Budget) Spent() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retries
}
