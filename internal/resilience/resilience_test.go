package resilience

import (
	"testing"
	"time"
)

// manualClock is a deterministic time source tests advance by hand.
type manualClock struct {
	t time.Time
}

func (c *manualClock) now() time.Time          { return c.t }
func (c *manualClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clock := &manualClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		HalfOpenProbes:   1,
		SuccessesToClose: 2,
	}, clock.now)

	if got := b.State(); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Failures below the threshold keep it closed; a success resets.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.RecordFailure()
	}
	b.Allow()
	b.RecordSuccess()
	if got := b.State(); got != Closed {
		t.Fatalf("state after reset = %v, want closed", got)
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.RecordFailure()
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// Cooldown elapses: half-open admits exactly one probe.
	clock.advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens.
	b.RecordFailure()
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Heal: two successful probes (SuccessesToClose=2) close it.
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open rejected first healing probe")
	}
	b.RecordSuccess()
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after one success = %v, want half-open (needs 2)", got)
	}
	if !b.Allow() {
		t.Fatal("half-open rejected second healing probe")
	}
	b.RecordSuccess()
	if got := b.State(); got != Closed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}

	opens, rejections := b.Stats()
	if opens != 2 {
		t.Errorf("opens = %d, want 2", opens)
	}
	if rejections == 0 {
		t.Error("expected fast-failed calls to be counted")
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewBudget(0.5, 2)
	// Burst admits the first two retries with zero requests seen.
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst retries rejected")
	}
	if b.Allow() {
		t.Fatal("retry admitted beyond burst with no requests")
	}
	// Four requests buy two more retries at ratio 0.5.
	for i := 0; i < 4; i++ {
		b.Request()
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("ratio-funded retries rejected")
	}
	if b.Allow() {
		t.Fatal("retry admitted beyond ratio")
	}
	if got := b.Spent(); got != 4 {
		t.Errorf("spent = %d, want 4", got)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	rng := newLockedRand(42)
	base, max := 10*time.Millisecond, 80*time.Millisecond
	prevRun := []time.Duration{}
	for attempt := 0; attempt < 6; attempt++ {
		d := backoffFor(base, max, attempt, rng)
		// Equal jitter keeps each delay within [cap/2, cap).
		cap := base << uint(attempt)
		if cap > max {
			cap = max
		}
		if d < cap/2 || d >= cap {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, cap/2, cap)
		}
		prevRun = append(prevRun, d)
	}
	// Same seed → same stream.
	rng2 := newLockedRand(42)
	for attempt := 0; attempt < 6; attempt++ {
		if d := backoffFor(base, max, attempt, rng2); d != prevRun[attempt] {
			t.Fatalf("attempt %d: non-deterministic backoff %v != %v", attempt, d, prevRun[attempt])
		}
	}
}

func TestPolicyNormaliseDefaults(t *testing.T) {
	p := Policy{}.Normalise()
	if p.MaxAttempts != 3 || p.BaseBackoff <= 0 || p.MaxBackoff <= 0 {
		t.Errorf("unnormalised retry defaults: %+v", p)
	}
	if p.Breaker.FailureThreshold != 5 || p.Breaker.Cooldown <= 0 {
		t.Errorf("unnormalised breaker defaults: %+v", p.Breaker)
	}
	if p.RetryBudgetRatio != 0.2 || p.RetryBudgetBurst != 10 {
		t.Errorf("unnormalised budget defaults: %+v", p)
	}
}
