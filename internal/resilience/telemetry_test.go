package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qurator/internal/resilience/chaos"
)

// TestBreakerTelemetryUnderChaos drives one endpoint's breaker through
// closed → open → half-open → open → half-open → closed with a chaos
// outage and asserts the telemetry series — state gauge, transition
// counters, attempt/retry/rejection counters — track every move. The
// endpoint key embeds the httptest port, so the series are unique to
// this test even on the shared default registry.
func TestBreakerTelemetryUnderChaos(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	clock := &manualClock{t: time.Unix(0, 0)}
	injector := chaos.New(http.DefaultTransport, chaos.Config{Seed: 1})
	injector.SetDown(true)
	tr := NewTransport(injector, Policy{
		MaxAttempts: 2,
		Breaker: BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         time.Second,
			HalfOpenProbes:   1,
			SuccessesToClose: 1,
		},
	}.WithClock(clock.now).WithSleep(
		func(time.Duration, <-chan struct{}) bool { return true }))

	call := func() error {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tr.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return err
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	key := endpointKey(req)
	gauge := rtBreakerState.With(key)

	assert := func(step string, wantGauge BreakerState, wantClosed, wantOpen, wantHalfOpen, wantAttempts, wantRetries, wantRejections uint64) {
		t.Helper()
		if got := gauge.Value(); got != float64(wantGauge) {
			t.Errorf("%s: breaker state gauge = %v, want %v (%s)", step, got, float64(wantGauge), wantGauge)
		}
		for _, c := range []struct {
			name string
			got  uint64
			want uint64
		}{
			{"transitions{to=closed}", rtBreakerTransitions.With(key, Closed.String()).Value(), wantClosed},
			{"transitions{to=open}", rtBreakerTransitions.With(key, Open.String()).Value(), wantOpen},
			{"transitions{to=half-open}", rtBreakerTransitions.With(key, HalfOpen.String()).Value(), wantHalfOpen},
			{"attempts", rtAttempts.With(key).Value(), wantAttempts},
			{"retries", rtRetries.With(key).Value(), wantRetries},
			{"rejections", rtBreakerRejections.With(key).Value(), wantRejections},
		} {
			if c.got != c.want {
				t.Errorf("%s: %s = %d, want %d", step, c.name, c.got, c.want)
			}
		}
	}

	// Call 1: two failed attempts (one retry) — breaker stays closed.
	if err := call(); err == nil {
		t.Fatal("call 1 succeeded during outage")
	}
	assert("after call 1", Closed, 0, 0, 0, 2, 1, 0)

	// Call 2: third consecutive failure trips the breaker open; the
	// retry is admitted by the budget but fast-failed by the breaker.
	if err := call(); !errors.Is(err, ErrOpen) {
		t.Fatalf("call 2: err = %v, want breaker-open", err)
	}
	assert("after call 2 (tripped)", Open, 0, 1, 0, 3, 2, 1)

	// Call 3: cooldown elapses, the half-open probe fails and re-opens
	// the breaker; the retry is again fast-failed.
	clock.advance(time.Second)
	if err := call(); err == nil {
		t.Fatal("call 3 succeeded during outage")
	}
	assert("after call 3 (failed probe)", Open, 0, 2, 1, 4, 3, 2)

	// Call 4: the outage ends, the next probe succeeds and closes the
	// breaker again.
	injector.SetDown(false)
	clock.advance(time.Second)
	if err := call(); err != nil {
		t.Fatalf("call 4 after recovery: %v", err)
	}
	assert("after call 4 (healed)", Closed, 1, 2, 2, 5, 3, 2)

	// The attempt-duration histogram saw exactly the admitted attempts.
	if got := rtAttemptDuration.With(key).Count(); got != 5 {
		t.Errorf("attempt duration observations = %d, want 5", got)
	}
}
