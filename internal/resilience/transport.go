package resilience

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"qurator/internal/telemetry"
)

// Resilience metrics, labelled by endpoint ("METHOD host/path" — one
// series per logical dependency, same granularity as the breakers).
var (
	rtAttempts = telemetry.Default.CounterVec(
		"qurator_resilience_attempts_total",
		"HTTP attempts made through the resilient transport.",
		"endpoint")
	rtRetries = telemetry.Default.CounterVec(
		"qurator_resilience_retries_total",
		"Attempts beyond the first that the retry budget admitted.",
		"endpoint")
	rtAttemptDuration = telemetry.Default.HistogramVec(
		"qurator_resilience_attempt_duration_seconds",
		"Wall-clock time of one HTTP attempt, including body buffering.",
		nil, "endpoint")
	rtBreakerState = telemetry.Default.GaugeVec(
		"qurator_resilience_breaker_state",
		"Breaker position: 0 closed, 1 open, 2 half-open.",
		"endpoint")
	rtBreakerTransitions = telemetry.Default.CounterVec(
		"qurator_resilience_breaker_transitions_total",
		"Breaker state changes, labelled by the state entered.",
		"endpoint", "to")
	rtBreakerRejections = telemetry.Default.CounterVec(
		"qurator_resilience_breaker_rejections_total",
		"Calls fast-failed by an open (or probe-saturated) breaker.",
		"endpoint")
)

// IdempotentHeader marks a request as safe to replay even though its
// method is not inherently safe. Qurator's service fabric funnels QA
// invocations, enrichment lookups and SPARQL queries through POST (the
// shared Envelope contract), so the client annotates the calls it knows
// are read-only or set-semantic; annotation writes are never marked.
const IdempotentHeader = "X-Qurator-Idempotent"

// MarkIdempotent flags req as replayable by the resilient transport.
func MarkIdempotent(req *http.Request) { req.Header.Set(IdempotentHeader, "true") }

// IsIdempotent reports whether the transport may retry req: inherently
// safe methods, or requests explicitly marked with MarkIdempotent.
func IsIdempotent(req *http.Request) bool {
	switch req.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return true
	}
	return req.Header.Get(IdempotentHeader) == "true"
}

// maxBufferedBody caps how much response body the transport buffers while
// verifying the read completes — the same ceiling the service fabric
// applies to envelopes.
const maxBufferedBody = 64 << 20

// ExhaustedError reports a call that failed after the transport spent
// every attempt it was willing to make.
type ExhaustedError struct {
	Endpoint string
	Attempts int
	Err      error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("resilience: %s failed after %d attempt(s): %v", e.Endpoint, e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// Transport is the resilient http.RoundTripper: per-endpoint circuit
// breakers, jittered exponential backoff under a retry budget, deadline
// propagation, and full-body buffering so truncated responses surface as
// retryable transport errors instead of downstream decode failures.
type Transport struct {
	base   http.RoundTripper
	policy Policy
	rng    *lockedRand
	budget *Budget

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewTransport wraps base (nil = http.DefaultTransport) with the policy.
func NewTransport(base http.RoundTripper, p Policy) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	p = p.Normalise()
	return &Transport{
		base:     base,
		policy:   p,
		rng:      newLockedRand(p.Seed),
		budget:   NewBudget(p.RetryBudgetRatio, p.RetryBudgetBurst),
		breakers: make(map[string]*Breaker),
	}
}

// endpointKey groups requests per logical dependency: one breaker per
// method+host+path, so a broken QA service does not open the breaker of
// its healthy neighbours on the same host.
func endpointKey(req *http.Request) string {
	return req.Method + " " + req.URL.Host + req.URL.Path
}

// breaker returns (creating if needed) the endpoint's breaker.
func (t *Transport) breaker(key string) *Breaker {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.breakers[key]
	if !ok {
		b = NewBreaker(t.policy.Breaker, t.policy.now)
		gauge := rtBreakerState.With(key)
		gauge.Set(float64(Closed))
		b.OnTransition(func(_, to BreakerState) {
			gauge.Set(float64(to))
			rtBreakerTransitions.With(key, to.String()).Inc()
		})
		t.breakers[key] = b
	}
	return b
}

// BreakerFor exposes the endpoint's breaker ("METHOD host/path") for
// observability and tests; nil if the endpoint was never called.
func (t *Transport) BreakerFor(key string) *Breaker {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breakers[key]
}

// BreakerStates snapshots every endpoint's effective breaker state.
func (t *Transport) BreakerStates() map[string]BreakerState {
	t.mu.Lock()
	keys := make([]string, 0, len(t.breakers))
	for k := range t.breakers {
		keys = append(keys, k)
	}
	t.mu.Unlock()
	out := make(map[string]BreakerState, len(keys))
	for _, k := range keys {
		out[k] = t.breaker(k).State()
	}
	return out
}

// Budget exposes the transport's retry budget.
func (t *Transport) Budget() *Budget { return t.budget }

// maxRetryAfter caps how long the transport honours a server-supplied
// Retry-After hint: a shedding front door asking for a few seconds is
// respected verbatim, a misconfigured one asking for an hour is not.
const maxRetryAfter = 30 * time.Second

// retryAfterHint parses a 429/503 response's Retry-After header
// (delta-seconds or HTTP-date) into a backoff floor, 0 when absent or
// unparseable. Load-shedding servers (admission control's 429s) use it to
// tell clients exactly when capacity returns; honouring it beats blind
// exponential guessing.
func retryAfterHint(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return min(time.Duration(secs)*time.Second, maxRetryAfter)
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return min(d, maxRetryAfter)
		}
	}
	return 0
}

// retryableStatus reports whether an HTTP status indicates a transient
// server-side condition worth retrying.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return code >= 500 && code != http.StatusNotImplemented
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := endpointKey(req)
	br := t.breaker(key)
	idempotent := IsIdempotent(req)
	maxAttempts := t.policy.MaxAttempts
	if !idempotent {
		// Non-idempotent calls get exactly one attempt: a lost response
		// may hide a committed write, and replaying it is not ours to
		// decide. Higher layers that know their operation's semantics
		// (set-semantic annotation puts) re-invoke through workflow.Retry.
		maxAttempts = 1
	}
	t.budget.Request()

	var lastErr error
	var retryAfter time.Duration // server-requested backoff floor
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if !t.budget.Allow() {
				break // budget exhausted: fail with the last error
			}
			rtRetries.With(key).Inc()
			d := backoffFor(t.policy.BaseBackoff, t.policy.MaxBackoff, attempt-1, t.rng)
			// A shedding server's Retry-After is a floor, not a hint to
			// ignore: backing off sooner would just be shed again.
			if retryAfter > d {
				d = retryAfter
			}
			retryAfter = 0
			if !t.policy.sleep(d, req.Context().Done()) {
				return nil, &ExhaustedError{Endpoint: key, Attempts: attempt, Err: req.Context().Err()}
			}
		}
		if !br.Allow() {
			rtBreakerRejections.With(key).Inc()
			lastErr = &OpenError{Endpoint: key}
			continue // the backoff above may outlive the cooldown
		}
		rtAttempts.With(key).Inc()
		began := time.Now()
		resp, err := t.attempt(req)
		rtAttemptDuration.With(key).Observe(time.Since(began).Seconds())
		if err != nil {
			br.RecordFailure()
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) {
			br.RecordFailure()
			retryAfter = retryAfterHint(resp)
			lastErr = fmt.Errorf("resilience: %s returned %s", key, resp.Status)
			if attempt == maxAttempts-1 || !t.budget.Peek() {
				// Out of attempts: hand the actual response to the caller
				// so status-specific handling still works.
				return resp, nil
			}
			resp.Body.Close()
			continue
		}
		br.RecordSuccess()
		return resp, nil
	}
	return nil, &ExhaustedError{Endpoint: key, Attempts: maxAttempts, Err: lastErr}
}

// attempt performs one try: clones the request (replaying the body via
// GetBody), applies the per-attempt deadline, and buffers the response
// body so truncation is detected here, where it can still be retried.
func (t *Transport) attempt(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	cancel := context.CancelFunc(func() {})
	if t.policy.AttemptTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, t.policy.AttemptTimeout)
	}
	r := req.Clone(ctx)
	// Every attempt carries the caller's trace position: a retried call
	// re-injects the same parent, so the far side's spans all join the
	// one trace no matter which attempt got through.
	telemetry.Inject(ctx, r.Header)
	if req.Body != nil && req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			cancel()
			return nil, err
		}
		r.Body = body
	}
	resp, err := t.base.RoundTrip(r)
	if err != nil {
		cancel()
		return nil, err
	}
	// Buffer the body: a mid-body connection reset becomes a retryable
	// error now instead of an XML decode failure later. The cancel must
	// not fire before the body is consumed, hence the read happens here.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBufferedBody))
	resp.Body.Close()
	cancel()
	if err != nil {
		return nil, fmt.Errorf("resilience: reading response body: %w", err)
	}
	if resp.ContentLength > 0 && int64(len(data)) < resp.ContentLength {
		return nil, fmt.Errorf("resilience: truncated response body: got %d of %d bytes",
			len(data), resp.ContentLength)
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	return resp, nil
}

var _ http.RoundTripper = (*Transport)(nil)
