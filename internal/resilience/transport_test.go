package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedBase is a RoundTripper whose per-call outcomes are scripted:
// "ok", "err", or "5xx". It counts calls so tests can assert exactly how
// many attempts reached the wire.
type scriptedBase struct {
	script []string
	calls  atomic.Int64
	bodies []string // optional per-call body for "ok"
}

func (s *scriptedBase) RoundTrip(req *http.Request) (*http.Response, error) {
	n := int(s.calls.Add(1)) - 1
	outcome := "ok"
	if n < len(s.script) {
		outcome = s.script[n]
	}
	switch outcome {
	case "err":
		return nil, fmt.Errorf("scripted transport error %d", n)
	case "5xx":
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Body:       io.NopCloser(strings.NewReader("overloaded")),
			Request:    req,
		}, nil
	default:
		body := "payload"
		if n < len(s.bodies) && s.bodies[n] != "" {
			body = s.bodies[n]
		}
		return &http.Response{
			StatusCode:    http.StatusOK,
			Status:        "200 OK",
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
}

// instantPolicy retries without sleeping and with a manual clock, so
// transport tests are instantaneous and exactly reproducible.
func instantPolicy(p Policy, clock *manualClock) Policy {
	if clock == nil {
		clock = &manualClock{t: time.Unix(0, 0)}
	}
	return p.WithSleep(func(time.Duration, <-chan struct{}) bool { return true }).WithClock(clock.now)
}

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestTransportRetriesTransientErrors(t *testing.T) {
	base := &scriptedBase{script: []string{"err", "5xx", "ok"}}
	tr := NewTransport(base, instantPolicy(Policy{MaxAttempts: 3}, nil))
	resp, err := get(t, tr, "http://qa.example/services/score")
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after retries", resp.StatusCode)
	}
	if got := base.calls.Load(); got != 3 {
		t.Errorf("wire attempts = %d, want 3", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "payload" {
		t.Errorf("body = %q", body)
	}
}

func TestTransportExhaustsAttempts(t *testing.T) {
	base := &scriptedBase{script: []string{"err", "err", "err", "err"}}
	tr := NewTransport(base, instantPolicy(Policy{MaxAttempts: 3}, nil))
	_, err := get(t, tr, "http://qa.example/services/score")
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Attempts != 3 || base.calls.Load() != 3 {
		t.Errorf("attempts = %d (wire %d), want 3", ex.Attempts, base.calls.Load())
	}
}

func TestTransportNeverRetriesNonIdempotentWrites(t *testing.T) {
	base := &scriptedBase{script: []string{"err", "ok"}}
	tr := NewTransport(base, instantPolicy(Policy{MaxAttempts: 5}, nil))
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodPost,
		"http://repo.example/repositories/default/annotations", strings.NewReader("<Annotations/>"))
	if _, err := tr.RoundTrip(req); err == nil {
		t.Fatal("unmarked POST should fail on first error, not retry")
	}
	if got := base.calls.Load(); got != 1 {
		t.Fatalf("non-idempotent write reached the wire %d times, want exactly 1", got)
	}

	// The same POST marked idempotent IS retried.
	base2 := &scriptedBase{script: []string{"err", "ok"}}
	tr2 := NewTransport(base2, instantPolicy(Policy{MaxAttempts: 5}, nil))
	req2, _ := http.NewRequestWithContext(context.Background(), http.MethodPost,
		"http://qa.example/services/score", strings.NewReader("<Envelope/>"))
	MarkIdempotent(req2)
	resp, err := tr2.RoundTrip(req2)
	if err != nil {
		t.Fatalf("marked POST: %v", err)
	}
	resp.Body.Close()
	if got := base2.calls.Load(); got != 2 {
		t.Errorf("marked POST attempts = %d, want 2", got)
	}
}

func TestTransportBreakerOpensAndRecovers(t *testing.T) {
	clock := &manualClock{t: time.Unix(0, 0)}
	// Plenty of scripted failures, then recovery.
	script := make([]string, 0, 16)
	for i := 0; i < 6; i++ {
		script = append(script, "err")
	}
	base := &scriptedBase{script: script}
	tr := NewTransport(base, instantPolicy(Policy{
		MaxAttempts: 1, // isolate the breaker from the retry loop
		Breaker:     BreakerConfig{FailureThreshold: 3, Cooldown: time.Second},
	}, clock))
	url := "http://qa.example/services/score"
	key := "GET qa.example/services/score"

	for i := 0; i < 3; i++ {
		if _, err := get(t, tr, url); err == nil {
			t.Fatal("scripted failure succeeded")
		}
	}
	if got := tr.BreakerFor(key).State(); got != Open {
		t.Fatalf("breaker state = %v, want open after 3 failures", got)
	}
	// While open, calls fail fast without touching the wire.
	wireBefore := base.calls.Load()
	_, err := get(t, tr, url)
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want breaker-open", err)
	}
	if base.calls.Load() != wireBefore {
		t.Error("open breaker let a call reach the wire")
	}

	// Cooldown elapses; the endpoint has healed (script exhausted → ok):
	// the half-open probe succeeds and the breaker closes.
	clock.advance(time.Second)
	base.script = nil
	resp, err := get(t, tr, url)
	if err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	resp.Body.Close()
	if got := tr.BreakerFor(key).State(); got != Closed {
		t.Fatalf("breaker state = %v, want closed after successful probe", got)
	}
}

func TestTransportDetectsTruncatedBody(t *testing.T) {
	// First response claims 100 bytes but carries 7; second is intact.
	truncated := &http.Response{
		StatusCode:    http.StatusOK,
		Status:        "200 OK",
		Body:          io.NopCloser(strings.NewReader("partial")),
		ContentLength: 100,
	}
	calls := 0
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		calls++
		if calls == 1 {
			truncated.Request = req
			return truncated, nil
		}
		return &http.Response{
			StatusCode:    http.StatusOK,
			Status:        "200 OK",
			Body:          io.NopCloser(strings.NewReader("complete")),
			ContentLength: 8,
			Request:       req,
		}, nil
	})
	tr := NewTransport(base, instantPolicy(Policy{MaxAttempts: 2}, nil))
	resp, err := get(t, tr, "http://qa.example/services/score")
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "complete" {
		t.Errorf("body = %q, want the retried complete response", body)
	}
	if calls != 2 {
		t.Errorf("wire attempts = %d, want 2 (truncation retried)", calls)
	}
}

func TestTransportHonoursRetryBudget(t *testing.T) {
	base := &scriptedBase{script: []string{
		"err", "err", "err", "err", "err", "err", "err", "err", "err", "err",
	}}
	tr := NewTransport(base, instantPolicy(Policy{
		MaxAttempts:      4,
		RetryBudgetRatio: 0.001, // effectively burst-only
		RetryBudgetBurst: 1,
	}, nil))
	if _, err := get(t, tr, "http://qa.example/services/score"); err == nil {
		t.Fatal("expected failure")
	}
	// 1 first attempt + 1 budgeted retry = 2 wire calls, not 4.
	if got := base.calls.Load(); got != 2 {
		t.Fatalf("wire attempts = %d, want 2 under exhausted budget", got)
	}
	if got := tr.Budget().Spent(); got != 1 {
		t.Errorf("budget spent = %d, want 1", got)
	}
}

func TestTransportDeadlinePropagation(t *testing.T) {
	blocked := make(chan struct{})
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-blocked:
			return nil, fmt.Errorf("unreachable")
		}
	})
	tr := NewTransport(base, Policy{MaxAttempts: 3, AttemptTimeout: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://qa.example/x", nil)
	start := time.Now()
	_, err := tr.RoundTrip(req)
	close(blocked)
	if err == nil {
		t.Fatal("expected deadline failure")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not propagate: took %v", elapsed)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// shedBase answers 429 + Retry-After for its first sheds calls, then 200 —
// the server side of admission-control load shedding.
type shedBase struct {
	sheds      int
	retryAfter string
	calls      atomic.Int64
}

func (s *shedBase) RoundTrip(req *http.Request) (*http.Response, error) {
	n := int(s.calls.Add(1))
	if n <= s.sheds {
		h := http.Header{}
		if s.retryAfter != "" {
			h.Set("Retry-After", s.retryAfter)
		}
		return &http.Response{
			StatusCode: http.StatusTooManyRequests,
			Status:     "429 Too Many Requests",
			Header:     h,
			Body:       io.NopCloser(strings.NewReader("shed")),
			Request:    req,
		}, nil
	}
	return &http.Response{
		StatusCode:    http.StatusOK,
		Status:        "200 OK",
		Body:          io.NopCloser(strings.NewReader("ok")),
		ContentLength: 2,
		Request:       req,
	}, nil
}

// TestTransportHonoursRetryAfter proves a shed client waits at least the
// server-requested interval instead of its own (shorter) backoff, then
// succeeds once shedding ends.
func TestTransportHonoursRetryAfter(t *testing.T) {
	base := &shedBase{sheds: 2, retryAfter: "3"}
	var sleeps []time.Duration
	p := Policy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}.
		WithSleep(func(d time.Duration, _ <-chan struct{}) bool {
			sleeps = append(sleeps, d)
			return true
		})
	tr := NewTransport(base, p)
	resp, err := get(t, tr, "http://front.example/stream/enact")
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after shedding ended", resp.StatusCode)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 retry sleeps", sleeps)
	}
	for i, d := range sleeps {
		if d < 3*time.Second {
			t.Errorf("sleep %d = %v, want ≥ 3s (the Retry-After floor)", i, d)
		}
	}
}

// TestRetryAfterHintParsesAndCaps covers the header grammar: delta
// seconds, HTTP-date, absent, garbage, and the cap on hostile values.
func TestRetryAfterHintParsesAndCaps(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d := retryAfterHint(mk("2")); d != 2*time.Second {
		t.Errorf("delta-seconds: %v, want 2s", d)
	}
	if d := retryAfterHint(mk("")); d != 0 {
		t.Errorf("absent: %v, want 0", d)
	}
	if d := retryAfterHint(mk("soon")); d != 0 {
		t.Errorf("garbage: %v, want 0", d)
	}
	if d := retryAfterHint(mk("3600")); d != maxRetryAfter {
		t.Errorf("hostile delta: %v, want cap %v", d, maxRetryAfter)
	}
	date := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfterHint(mk(date)); d <= 0 || d > 5*time.Second {
		t.Errorf("HTTP-date: %v, want (0, 5s]", d)
	}
}
