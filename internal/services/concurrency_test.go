package services

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qa"
	"qurator/internal/rdf"
)

// TestConcurrentRoundTrips drives many goroutines through both HTTP
// surfaces at once — service invocation (http.go) and repository
// read/write (repohttp.go) — each with a payload only it uses. Under
// -race this shows the transport neither loses nor cross-wires
// envelopes: every response carries exactly the evidence its own
// request sent, and the shared store ends with exactly the annotations
// that were put.
func TestConcurrentRoundTrips(t *testing.T) {
	reg := NewRegistry()
	reg.Add(&AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(ontology.Q("tag/HR_MC")),
	})
	repos := annotstore.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/services", Handler(reg))
	mux.Handle("/services/", Handler(reg))
	mux.Handle("/repositories", RepositoryHandler(repos))
	mux.Handle("/repositories/", RepositoryHandler(repos))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const goroutines = 8
	const rounds = 5
	concItem := func(g, i int) evidence.Item {
		return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:conc:%d:%d", g, i))
	}
	concFrac := func(g, i int) float64 {
		return float64(g*rounds+i+1) / float64(goroutines*rounds+1)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &Client{BaseURL: srv.URL}
			remote := NewRemoteRepository(client, "default", true)
			for i := 0; i < rounds; i++ {
				it, frac := concItem(g, i), concFrac(g, i)
				m := evidence.NewMap()
				m.Set(it, ontology.HitRatio, evidence.Float(frac))
				m.Set(it, ontology.Coverage, evidence.Float(frac))
				resp, err := client.Invoke(context.Background(), "HR_MC_score", NewEnvelope(m))
				if err != nil {
					errs <- fmt.Errorf("g%d r%d: Invoke: %w", g, i, err)
					return
				}
				got, err := resp.Map()
				if err != nil {
					errs <- fmt.Errorf("g%d r%d: response Map: %w", g, i, err)
					return
				}
				if got.Len() != 1 || !got.Has(it, ontology.Q("tag/HR_MC")) {
					errs <- fmt.Errorf("g%d r%d: response lost the item or its score", g, i)
					return
				}
				if v := got.Get(it, ontology.HitRatio); !v.Equal(evidence.Float(frac)) {
					errs <- fmt.Errorf("g%d r%d: evidence cross-wired: got %v", g, i, v)
					return
				}
				err = remote.Put(annotstore.Annotation{
					Item: it, Type: ontology.HitRatio, Value: evidence.Float(frac),
				})
				if err != nil {
					errs <- fmt.Errorf("g%d r%d: remote Put: %w", g, i, err)
					return
				}
				if v, ok := remote.Get(it, ontology.HitRatio); !ok || !v.Equal(evidence.Float(frac)) {
					errs <- fmt.Errorf("g%d r%d: remote Get = %v, %v", g, i, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The store holds exactly one annotation per (goroutine, round) — no
	// concurrent put was lost, duplicated, or overwritten by a peer's.
	def := repos.MustGet("default")
	if def.Len() != goroutines*rounds {
		t.Errorf("store holds %d annotations, want %d", def.Len(), goroutines*rounds)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < rounds; i++ {
			it, frac := concItem(g, i), concFrac(g, i)
			if v, ok := def.Get(it, ontology.HitRatio); !ok || !v.Equal(evidence.Float(frac)) {
				t.Errorf("annotation for %s lost or corrupted: %v, %v", it.Value(), v, ok)
			}
		}
	}
}
