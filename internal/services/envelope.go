// Package services implements Qurator's service fabric (paper §5): the
// user-extensible QA and Annotation operators are exposed as services that
// all share one interface and one message schema — the paper uses WSDL and
// an XML schema; here the common contract is the QualityService interface
// and the Envelope XML message, "effectively a concrete model for the data
// sets, evidence types and annotation maps described in abstract terms".
//
// Services can be invoked in-process or over HTTP (cmd/quratord hosts
// them); the Registry plays the role of Taverna's service scavenger,
// discovering the services deployed on a host.
package services

import (
	"encoding/xml"
	"fmt"
	"strconv"

	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

// Envelope is the common message schema exchanged by all Qurator services.
type Envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	// Service and Operation identify the call (informational on responses).
	Service   string `xml:"service,attr,omitempty"`
	Operation string `xml:"operation,attr,omitempty"`
	// Config carries per-call parameters (e.g. repositoryRef, conditions).
	Config Config `xml:"Config"`
	// DataSet is the ordered list of data items D.
	DataSet DataSet `xml:"DataSet"`
	// Annotations is the annotation map serialised row-wise.
	Annotations AnnotationMapXML `xml:"AnnotationMap"`
	// Groups carries splitter outputs (one named data set + map each).
	Groups []Group `xml:"Group,omitempty"`
	// Error carries a fault message on responses.
	Error string `xml:"Error,omitempty"`
}

// Config is a list of named string parameters.
type Config struct {
	Params []Param `xml:"param"`
}

// Param is one configuration parameter.
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Get returns the named parameter value and whether it was present.
func (c Config) Get(name string) (string, bool) {
	for _, p := range c.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// Set appends or replaces a parameter.
func (c *Config) Set(name, value string) {
	for i, p := range c.Params {
		if p.Name == name {
			c.Params[i].Value = value
			return
		}
	}
	c.Params = append(c.Params, Param{Name: name, Value: value})
}

// DataSet is the ordered item list.
type DataSet struct {
	Items []ItemRef `xml:"item"`
}

// ItemRef references one data item by URI.
type ItemRef struct {
	URI string `xml:"uri,attr"`
}

// AnnotationMapXML is the row-wise serialisation of an evidence.Map.
type AnnotationMapXML struct {
	Entries []Entry `xml:"entry"`
}

// Entry is one (item, key, value) cell.
type Entry struct {
	Item  string `xml:"item,attr"`
	Key   string `xml:"key,attr"`
	Kind  string `xml:"kind,attr"`
	Value string `xml:"value,attr"`
}

// Group is one named splitter output.
type Group struct {
	Name        string           `xml:"name,attr"`
	DataSet     DataSet          `xml:"DataSet"`
	Annotations AnnotationMapXML `xml:"AnnotationMap"`
}

// NewEnvelope builds an envelope from an annotation map.
func NewEnvelope(m *evidence.Map) *Envelope {
	e := &Envelope{}
	e.SetMap(m)
	return e
}

// SetMap encodes the annotation map (items + entries) into the envelope.
func (e *Envelope) SetMap(m *evidence.Map) {
	e.DataSet, e.Annotations = encodeMap(m)
}

// Map decodes the envelope's data set and annotation map.
func (e *Envelope) Map() (*evidence.Map, error) {
	return decodeMap(e.DataSet, e.Annotations)
}

// SetGroups encodes splitter outputs. Group order follows names.
func (e *Envelope) SetGroups(groups map[string]*evidence.Map, order []string) {
	e.Groups = e.Groups[:0]
	for _, name := range order {
		m, ok := groups[name]
		if !ok {
			continue
		}
		ds, am := encodeMap(m)
		e.Groups = append(e.Groups, Group{Name: name, DataSet: ds, Annotations: am})
	}
}

// GroupMaps decodes the envelope's groups.
func (e *Envelope) GroupMaps() (map[string]*evidence.Map, error) {
	out := make(map[string]*evidence.Map, len(e.Groups))
	for _, g := range e.Groups {
		m, err := decodeMap(g.DataSet, g.Annotations)
		if err != nil {
			return nil, fmt.Errorf("services: group %q: %w", g.Name, err)
		}
		out[g.Name] = m
	}
	return out, nil
}

func encodeMap(m *evidence.Map) (DataSet, AnnotationMapXML) {
	var ds DataSet
	var am AnnotationMapXML
	if m == nil {
		return ds, am
	}
	keys := m.Keys()
	for _, item := range m.Items() {
		ds.Items = append(ds.Items, ItemRef{URI: item.Value()})
		for _, key := range keys {
			v := m.Get(item, key)
			if v.IsNull() {
				continue
			}
			am.Entries = append(am.Entries, Entry{
				Item:  item.Value(),
				Key:   key.Value(),
				Kind:  v.Kind().String(),
				Value: encodeValue(v),
			})
		}
	}
	return ds, am
}

func decodeMap(ds DataSet, am AnnotationMapXML) (*evidence.Map, error) {
	m := evidence.NewMap()
	for _, it := range ds.Items {
		if it.URI == "" {
			return nil, fmt.Errorf("services: data set item with empty URI")
		}
		m.AddItem(rdf.IRI(it.URI))
	}
	for _, entry := range am.Entries {
		v, err := decodeValue(entry.Kind, entry.Value)
		if err != nil {
			return nil, fmt.Errorf("services: entry (%s, %s): %w", entry.Item, entry.Key, err)
		}
		m.Set(rdf.IRI(entry.Item), rdf.IRI(entry.Key), v)
	}
	return m, nil
}

func encodeValue(v evidence.Value) string {
	if t, ok := v.AsTerm(); ok {
		return t.Value()
	}
	return v.AsString()
}

func decodeValue(kind, raw string) (evidence.Value, error) {
	switch kind {
	case "float":
		v := evidence.String_(raw)
		f, ok := v.AsFloat()
		if !ok {
			return evidence.Null, fmt.Errorf("bad float %q", raw)
		}
		return evidence.Float(f), nil
	case "int":
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return evidence.Null, fmt.Errorf("bad int %q: %v", raw, err)
		}
		return evidence.Int(n), nil
	case "string":
		return evidence.String_(raw), nil
	case "bool":
		switch raw {
		case "true":
			return evidence.Bool(true), nil
		case "false":
			return evidence.Bool(false), nil
		}
		return evidence.Null, fmt.Errorf("bad bool %q", raw)
	case "term":
		return evidence.TermValue(rdf.IRI(raw)), nil
	default:
		return evidence.Null, fmt.Errorf("unknown value kind %q", kind)
	}
}

// Marshal renders the envelope as XML.
func (e *Envelope) Marshal() ([]byte, error) {
	return xml.MarshalIndent(e, "", "  ")
}

// UnmarshalEnvelope parses an envelope from XML.
func UnmarshalEnvelope(data []byte) (*Envelope, error) {
	var e Envelope
	if err := xml.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("services: bad envelope: %w", err)
	}
	return &e, nil
}
