package services

import (
	"strings"
	"testing"
)

// FuzzUnmarshalEnvelope feeds malformed and adversarial envelope XML into
// the full decode path — parse, annotation-map decode, group decode,
// re-marshal — and requires that none of it panics. This is the message
// every fabric component accepts from the network; the chaos harness
// corrupts exactly these bytes in flight.
func FuzzUnmarshalEnvelope(f *testing.F) {
	seeds := []string{
		// A healthy envelope.
		`<Envelope service="score"><Config><param name="repositoryRef" value="cache"/></Config>` +
			`<DataSet><item uri="urn:lsid:test.org:item:1"/></DataSet>` +
			`<AnnotationMap><entry item="urn:lsid:test.org:item:1" key="urn:k" kind="float" value="0.5"/></AnnotationMap></Envelope>`,
		// A fault response.
		`<Envelope service="score"><Error>boom</Error></Envelope>`,
		// Splitter groups.
		`<Envelope operation="split"><Group name="high"><DataSet><item uri="urn:a"/></DataSet></Group>` +
			`<Group name="default"><DataSet/></Group></Envelope>`,
		// The chaos transport's corruption shape: brackets stripped, NUL appended.
		"Envelope serviceDataSetitem uri=\"urn:a\"/DataSet/Envelope\x00<unclosed",
		// Truncated mid-element.
		`<Envelope><DataSet><item uri="urn:lsid:te`,
		// Empty-URI item, bad kinds, bad numbers.
		`<Envelope><DataSet><item uri=""/></DataSet></Envelope>`,
		`<Envelope><AnnotationMap><entry item="urn:a" key="urn:k" kind="float" value="not-a-number"/></AnnotationMap></Envelope>`,
		`<Envelope><AnnotationMap><entry item="urn:a" key="urn:k" kind="martian" value="x"/></AnnotationMap></Envelope>`,
		// Deep nesting and entity-ish noise.
		strings.Repeat("<Group>", 40) + strings.Repeat("</Group>", 40),
		`<Envelope>&lt;&gt;&amp;&#x0;</Envelope>`,
		``,
		`<`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEnvelope(data)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Exercise every downstream decode a fabric component would run.
		if m, err := e.Map(); err == nil && m != nil {
			_ = m.Len()
			_ = m.Keys()
		}
		if groups, err := e.GroupMaps(); err == nil {
			for _, g := range groups {
				_ = g.Items()
			}
		}
		_, _ = e.Marshal()
	})
}
