package services

import "fmt"

// Typed client-side errors. The remote-repository and service-invocation
// paths previously collapsed every failure into an opaque string (or
// worse, a silent empty result); these types let callers — the resilience
// layer, degraded-mode routing, and tests — distinguish a service that
// answered badly from a wire that failed.

// StatusError reports a non-2xx HTTP response from a Qurator host.
type StatusError struct {
	Method string
	Path   string
	Status int
	Body   string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("services: %s %s: status %d: %s", e.Method, e.Path, e.Status, e.Body)
}

// DecodeError reports a response body that could not be parsed — a
// malformed envelope, truncated XML, or a mid-body connection reset
// surfacing as an unexpected EOF.
type DecodeError struct {
	Path string
	Err  error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("services: decoding response from %s: %v", e.Path, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// FaultError reports a service-level fault: the remote service ran and
// answered with an Error envelope. Distinct from transport failures —
// retrying a fault re-runs the same broken computation.
type FaultError struct {
	Service string
	Message string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("services: %s fault: %s", e.Service, e.Message)
}
