package services

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"qurator/internal/resilience"
	"qurator/internal/telemetry"
)

// svcRequests counts service invocations on the serving side, labelled
// by service and outcome (ok, fault, not_found, bad_request, error).
var svcRequests = telemetry.Default.CounterVec(
	"qurator_service_requests_total",
	"Service fabric invocations by service and outcome.",
	"service", "outcome")

// Handler serves a registry over HTTP:
//
//	GET  /services            → XML list of service descriptions
//	POST /services/<name>     → invoke <name> with an Envelope body
//
// This is the deployment surface cmd/quratord exposes, and the surface the
// Scavenger discovers services from — the counterpart of publishing WSDL
// for Taverna's scavenger (paper §6.1).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /services", func(w http.ResponseWriter, r *http.Request) {
		list := struct {
			XMLName  xml.Name `xml:"Services"`
			Services []Info   `xml:"Service"`
		}{Services: reg.List()}
		w.Header().Set("Content-Type", "application/xml")
		if err := xml.NewEncoder(w).Encode(list); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("POST /services/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		svc, ok := reg.Get(name)
		if !ok {
			svcRequests.With(name, "not_found").Inc()
			http.Error(w, fmt.Sprintf("unknown service %q", name), http.StatusNotFound)
			return
		}
		// Join the caller's trace when one arrived; an un-traced
		// invocation gets no span — the fabric must not mint a fresh
		// trace per QA call.
		ctx := r.Context()
		if traceCtx, traced := telemetry.Extract(ctx, r.Header); traced {
			var span *telemetry.Span
			ctx, span = telemetry.StartSpan(traceCtx, "service:"+name)
			defer span.End()
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			svcRequests.With(name, "bad_request").Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := UnmarshalEnvelope(body)
		if err != nil {
			svcRequests.With(name, "bad_request").Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := svc.Invoke(ctx, req)
		if err != nil {
			// Faults travel as envelopes with an Error element, so
			// clients distinguish service faults from transport failures.
			svcRequests.With(name, "fault").Inc()
			fault := &Envelope{Service: name, Error: err.Error()}
			w.Header().Set("Content-Type", "application/xml")
			w.WriteHeader(http.StatusUnprocessableEntity)
			data, _ := fault.Marshal()
			w.Write(data)
			return
		}
		data, err := resp.Marshal()
		if err != nil {
			svcRequests.With(name, "error").Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		svcRequests.With(name, "ok").Inc()
		w.Header().Set("Content-Type", "application/xml")
		w.Write(data)
	})
	return mux
}

// Client invokes remote Qurator services over HTTP.
type Client struct {
	// BaseURL is the host root, e.g. "http://localhost:9090".
	BaseURL string
	// HTTPClient, when set, overrides the shared default client (which
	// reuses one transport and its connection pool across all Clients).
	HTTPClient *http.Client
}

// defaultHTTPClient is shared by every Client without an explicit
// HTTPClient: one transport, one connection pool — a fresh client per
// call would dial a new connection every time and defeat keep-alive.
var (
	defaultHTTPOnce   sync.Once
	defaultHTTPClient *http.Client
)

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	defaultHTTPOnce.Do(func() {
		defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}
	})
	return defaultHTTPClient
}

// NewResilientClient returns a Client whose HTTP transport retries
// transient failures with jittered backoff under a retry budget, breaks
// the circuit per endpoint, and propagates deadlines — the production
// fabric client. base is the underlying RoundTripper (nil =
// http.DefaultTransport; tests inject a chaos transport here).
func NewResilientClient(baseURL string, policy resilience.Policy, base http.RoundTripper) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTPClient: &http.Client{
			Transport: resilience.NewTransport(base, policy),
			Timeout:   2 * time.Minute, // outer bound; per-attempt deadlines live in the policy
		},
	}
}

// ResilientTransport returns the client's resilience.Transport when it
// has one (for breaker observability), else nil.
func (c *Client) ResilientTransport() *resilience.Transport {
	if c.HTTPClient == nil {
		return nil
	}
	t, _ := c.HTTPClient.Transport.(*resilience.Transport)
	return t
}

// Invoke calls the named remote service. The invocation is not marked
// replayable — use InvokeIdempotent for calls known to be side-effect
// free (or set-semantic), which the resilient transport may then retry.
func (c *Client) Invoke(ctx context.Context, name string, req *Envelope) (*Envelope, error) {
	return c.invoke(ctx, name, req, false)
}

// InvokeIdempotent is Invoke for calls the caller knows are safe to
// replay: QA assertions, enrichment lookups, filters and splits — every
// fabric operation except annotation writes.
func (c *Client) InvokeIdempotent(ctx context.Context, name string, req *Envelope) (*Envelope, error) {
	return c.invoke(ctx, name, req, true)
}

func (c *Client) invoke(ctx context.Context, name string, req *Envelope, idempotent bool) (*Envelope, error) {
	data, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + "/services/" + name
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/xml")
	if idempotent {
		resilience.MarkIdempotent(httpReq)
	}
	telemetry.Inject(ctx, httpReq.Header)
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("services: invoking %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, &DecodeError{Path: url, Err: err}
	}
	switch httpResp.StatusCode {
	case http.StatusOK, http.StatusUnprocessableEntity:
		resp, err := UnmarshalEnvelope(body)
		if err != nil {
			return nil, &DecodeError{Path: url, Err: err}
		}
		if resp.Error != "" {
			return nil, &FaultError{Service: name, Message: resp.Error}
		}
		return resp, nil
	default:
		return nil, &StatusError{Method: http.MethodPost, Path: url,
			Status: httpResp.StatusCode, Body: strings.TrimSpace(string(body))}
	}
}

// Scavenge discovers the services deployed on a remote host and returns
// proxies for them, ready to Add to a local registry — the analogue of
// Taverna's services-scavenger process (§6.1: "any deployed Web Service
// with a published WSDL interface can be found automatically on a
// specified host").
func (c *Client) Scavenge(ctx context.Context) ([]QualityService, error) {
	url := strings.TrimSuffix(c.BaseURL, "/") + "/services"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("services: scavenging %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("services: scavenging %s: %s", url, httpResp.Status)
	}
	var list struct {
		Services []Info `xml:"Service"`
	}
	if err := xml.NewDecoder(httpResp.Body).Decode(&list); err != nil {
		return nil, err
	}
	out := make([]QualityService, len(list.Services))
	for i, info := range list.Services {
		out[i] = &remoteService{client: c, info: info}
	}
	return out, nil
}

// remoteService proxies a scavenged remote service.
type remoteService struct {
	client *Client
	info   Info
}

// Describe implements QualityService.
func (r *remoteService) Describe() Info { return r.info }

// Invoke implements QualityService. Assertion, enrichment and action
// invocations are pure functions of their envelope and are marked
// replayable for the resilient transport; annotation invocations write
// to repositories and are never replayed at the transport layer (a lost
// response may hide a committed write — only the application, which
// knows annotation puts are set-semantic, may re-invoke, via
// workflow.Retry).
func (r *remoteService) Invoke(ctx context.Context, req *Envelope) (*Envelope, error) {
	if r.info.Kind == KindAnnotation {
		return r.client.Invoke(ctx, r.info.Name, req)
	}
	return r.client.InvokeIdempotent(ctx, r.info.Name, req)
}
