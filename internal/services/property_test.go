package services

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

// Property: the Envelope XML schema round-trips arbitrary annotation maps
// losslessly — items, order, every value kind.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := evidence.NewMap()
		nItems := rng.Intn(15)
		for i := 0; i < nItems; i++ {
			it := rdf.IRI(fmt.Sprintf("urn:lsid:t.org:x:%d", i))
			m.AddItem(it)
			for k := 0; k < rng.Intn(4); k++ {
				key := rdf.IRI(fmt.Sprintf("urn:key:%d", rng.Intn(5)))
				var v evidence.Value
				switch rng.Intn(5) {
				case 0:
					f64 := rng.NormFloat64()
					if math.IsNaN(f64) || math.IsInf(f64, 0) {
						f64 = 1
					}
					v = evidence.Float(f64)
				case 1:
					v = evidence.Int(rng.Int63n(1000) - 500)
				case 2:
					v = evidence.String_(fmt.Sprintf("str-%d <&\"'> %d", i, k))
				case 3:
					v = evidence.Bool(rng.Intn(2) == 0)
				default:
					v = evidence.TermValue(rdf.IRI(fmt.Sprintf("urn:label:%d", rng.Intn(3))))
				}
				m.Set(it, key, v)
			}
		}
		env := NewEnvelope(m)
		data, err := env.Marshal()
		if err != nil {
			return false
		}
		back, err := UnmarshalEnvelope(data)
		if err != nil {
			return false
		}
		m2, err := back.Map()
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(m.Items(), m2.Items()) {
			return false
		}
		for _, it := range m.Items() {
			if !reflect.DeepEqual(m.Row(it), m2.Row(it)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
