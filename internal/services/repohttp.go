package services

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/rdf"
	"qurator/internal/resilience"
	"qurator/internal/sparql"
)

// This file puts the annotation repositories themselves on the wire,
// completing the paper's Figure 5 deployment: the data layer ("a
// collection of quality annotation repositories ... all accessed through
// the same read/write API") becomes reachable from other hosts, so a
// quality workflow can enrich against a peer's metadata store.
//
// Surface (rooted at the host):
//
//	GET    /repositories                      list stores
//	GET    /repositories/{name}/items         annotated items
//	GET    /repositories/{name}/annotation    one value (?item=&type=)
//	POST   /repositories/{name}/annotations   batch put (AnnotationsXML body)
//	DELETE /repositories/{name}/annotations   clear
//	POST   /repositories/{name}/enrich        bulk (data, types) lookup
//	POST   /repositories/{name}/sparql        query (text body)

// RepoInfo describes one hosted repository.
type RepoInfo struct {
	Name       string `xml:"name,attr"`
	Persistent bool   `xml:"persistent,attr"`
	Len        int    `xml:"len,attr"`
}

// AnnotationXML is the wire form of one annotation.
type AnnotationXML struct {
	Item        string `xml:"item,attr"`
	Type        string `xml:"type,attr"`
	Kind        string `xml:"kind,attr"`
	Value       string `xml:"value,attr"`
	Source      string `xml:"source,attr,omitempty"`
	EntityClass string `xml:"entityClass,attr,omitempty"`
}

// AnnotationsXML is a batch of annotations.
type AnnotationsXML struct {
	XMLName     xml.Name        `xml:"Annotations"`
	Annotations []AnnotationXML `xml:"annotation"`
}

func encodeAnnotation(a annotstore.Annotation) AnnotationXML {
	return AnnotationXML{
		Item:        a.Item.Value(),
		Type:        a.Type.Value(),
		Kind:        a.Value.Kind().String(),
		Value:       encodeValue(a.Value),
		Source:      a.Source.Value(),
		EntityClass: a.EntityClass.Value(),
	}
}

func decodeAnnotation(x AnnotationXML) (annotstore.Annotation, error) {
	if x.Item == "" || x.Type == "" {
		return annotstore.Annotation{}, fmt.Errorf("services: annotation needs item and type")
	}
	v, err := decodeValue(x.Kind, x.Value)
	if err != nil {
		return annotstore.Annotation{}, err
	}
	a := annotstore.Annotation{
		Item:  rdf.IRI(x.Item),
		Type:  rdf.IRI(x.Type),
		Value: v,
	}
	if x.Source != "" {
		a.Source = rdf.IRI(x.Source)
	}
	if x.EntityClass != "" {
		a.EntityClass = rdf.IRI(x.EntityClass)
	}
	return a, nil
}

// ResultsXML is the wire form of a SPARQL result (terms in N-Triples
// syntax).
type ResultsXML struct {
	XMLName xml.Name    `xml:"Results"`
	Vars    []string    `xml:"vars>var"`
	Ok      bool        `xml:"ok,attr"`
	Rows    []ResultRow `xml:"result"`
}

// ResultRow is one solution.
type ResultRow struct {
	Bindings []ResultBinding `xml:"binding"`
}

// ResultBinding binds one variable to an N-Triples-rendered term.
type ResultBinding struct {
	Name string `xml:"name,attr"`
	Term string `xml:"term,attr"`
}

func encodeResults(r *sparql.Result) ResultsXML {
	out := ResultsXML{Vars: r.Vars, Ok: r.Ok}
	for _, b := range r.Bindings {
		var row ResultRow
		for _, v := range r.Vars {
			if t, ok := b[v]; ok {
				row.Bindings = append(row.Bindings, ResultBinding{Name: v, Term: t.String()})
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func decodeResults(x ResultsXML) (*sparql.Result, error) {
	r := &sparql.Result{Vars: x.Vars, Ok: x.Ok}
	for _, row := range x.Rows {
		b := sparql.Binding{}
		for _, rb := range row.Bindings {
			t, err := rdf.ParseTerm(rb.Term)
			if err != nil {
				return nil, fmt.Errorf("services: bad term in results: %w", err)
			}
			b[rb.Name] = t
		}
		r.Bindings = append(r.Bindings, b)
	}
	return r, nil
}

// RepositoryHandler serves a repository registry over HTTP.
func RepositoryHandler(reg *annotstore.Registry) http.Handler {
	mux := http.NewServeMux()

	writeXML := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/xml")
		if err := xml.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	store := func(w http.ResponseWriter, r *http.Request) (annotstore.Store, bool) {
		name := r.PathValue("name")
		s, ok := reg.Get(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown repository %q", name), http.StatusNotFound)
			return nil, false
		}
		return s, true
	}

	mux.HandleFunc("GET /repositories", func(w http.ResponseWriter, r *http.Request) {
		var list struct {
			XMLName xml.Name   `xml:"Repositories"`
			Repos   []RepoInfo `xml:"Repository"`
		}
		for _, name := range reg.Names() {
			s := reg.MustGet(name)
			list.Repos = append(list.Repos, RepoInfo{Name: s.Name(), Persistent: s.Persistent(), Len: s.Len()})
		}
		writeXML(w, list)
	})

	mux.HandleFunc("GET /repositories/{name}/items", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		var ds DataSet
		for _, it := range s.Items() {
			ds.Items = append(ds.Items, ItemRef{URI: it.Value()})
		}
		writeXML(w, ds)
	})

	mux.HandleFunc("GET /repositories/{name}/annotation", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		item, typ := r.URL.Query().Get("item"), r.URL.Query().Get("type")
		if item == "" || typ == "" {
			http.Error(w, "item and type query parameters are required", http.StatusBadRequest)
			return
		}
		v, found := s.Get(rdf.IRI(item), rdf.IRI(typ))
		if !found {
			http.Error(w, "no such annotation", http.StatusNotFound)
			return
		}
		writeXML(w, AnnotationXML{Item: item, Type: typ, Kind: v.Kind().String(), Value: encodeValue(v)})
	})

	mux.HandleFunc("POST /repositories/{name}/annotations", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch AnnotationsXML
		if err := xml.Unmarshal(body, &batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for i, x := range batch.Annotations {
			a, err := decodeAnnotation(x)
			if err == nil {
				err = s.Put(a)
			}
			if err != nil {
				http.Error(w, fmt.Sprintf("annotation %d: %v", i, err), http.StatusUnprocessableEntity)
				return
			}
		}
		fmt.Fprintf(w, "%d", len(batch.Annotations))
	})

	mux.HandleFunc("DELETE /repositories/{name}/annotations", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		s.Clear()
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /repositories/{name}/enrich", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := UnmarshalEnvelope(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m, err := req.Map()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		typesParam, _ := req.Config.Get("types")
		var types []rdf.Term
		for _, t := range strings.Split(typesParam, ",") {
			if t = strings.TrimSpace(t); t != "" {
				types = append(types, rdf.IRI(t))
			}
		}
		s.Enrich(m, types)
		resp := NewEnvelope(m)
		data, err := resp.Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		w.Write(data)
	})

	mux.HandleFunc("GET /repositories/{name}/graph", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		// Human-readable Turtle dump; only local repositories expose
		// their raw graph.
		local, ok := s.(*annotstore.Repository)
		if !ok {
			http.Error(w, "repository does not expose its graph", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		if err := local.WriteTurtle(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("POST /repositories/{name}/sparql", func(w http.ResponseWriter, r *http.Request) {
		s, ok := store(w, r)
		if !ok {
			return
		}
		query, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.Query(string(query))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeXML(w, encodeResults(res))
	})

	return mux
}

// RemoteRepository is an annotstore.Store backed by a repository hosted on
// another Qurator node.
type RemoteRepository struct {
	client     *Client
	name       string
	persistent bool

	mu      sync.Mutex
	lastErr error
}

// setErr records a failure from a Store method whose signature cannot
// carry an error (Get, Enrich, Items, Len, Clear), so callers can
// distinguish "no annotation" from "the wire failed".
func (r *RemoteRepository) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
}

// LastError returns the most recent transport/decode failure seen by an
// error-less Store method (typed: *StatusError, *DecodeError, or a
// wrapped transport error), or nil. Reading does not clear it; a
// subsequent successful call does.
func (r *RemoteRepository) LastError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// NewRemoteRepository returns a store proxy for a named repository on the
// client's host. The persistent flag mirrors the remote store's (used by
// ClearCaches on the local registry).
func NewRemoteRepository(client *Client, name string, persistent bool) *RemoteRepository {
	return &RemoteRepository{client: client, name: name, persistent: persistent}
}

// ScavengeRepositories discovers the repositories hosted at the client's
// base URL, returning proxies ready to Add to a local registry.
func (c *Client) ScavengeRepositories(ctx context.Context) ([]*RemoteRepository, error) {
	var list struct {
		Repos []RepoInfo `xml:"Repository"`
	}
	if err := c.getXML(ctx, "/repositories", &list); err != nil {
		return nil, err
	}
	out := make([]*RemoteRepository, len(list.Repos))
	for i, info := range list.Repos {
		out[i] = NewRemoteRepository(c, info.Name, info.Persistent)
	}
	return out, nil
}

func (c *Client) getXML(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &StatusError{Method: http.MethodGet, Path: path,
			Status: resp.StatusCode, Body: strings.TrimSpace(string(body))}
	}
	if err := xml.NewDecoder(resp.Body).Decode(v); err != nil {
		return &DecodeError{Path: path, Err: err}
	}
	return nil
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// do performs one request; idempotent marks it replayable for the
// resilient transport (reads and set-semantic deletes — never annotation
// writes).
func (c *Client) do(ctx context.Context, method, path string, body []byte, wantStatus int, idempotent bool) ([]byte, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), reader)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/xml")
	}
	if idempotent {
		resilience.MarkIdempotent(req)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, &DecodeError{Path: path, Err: err}
	}
	if resp.StatusCode != wantStatus {
		return data, &StatusError{Method: method, Path: path,
			Status: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// Name implements annotstore.Store.
func (r *RemoteRepository) Name() string { return r.name }

// Persistent implements annotstore.Store.
func (r *RemoteRepository) Persistent() bool { return r.persistent }

// Put implements annotstore.Store. The write is deliberately not marked
// idempotent: the transport must never replay it (see remoteService).
func (r *RemoteRepository) Put(a annotstore.Annotation) error {
	batch := AnnotationsXML{Annotations: []AnnotationXML{encodeAnnotation(a)}}
	body, err := xml.Marshal(batch)
	if err != nil {
		return err
	}
	_, err = r.client.do(context.Background(), http.MethodPost,
		"/repositories/"+r.name+"/annotations", body, http.StatusOK, false)
	return err
}

// Get implements annotstore.Store. A "no" answer caused by a transport
// or decode failure (rather than an absent annotation) is recorded and
// retrievable via LastError.
func (r *RemoteRepository) Get(item evidence.Item, typ rdf.Term) (evidence.Value, bool) {
	path := "/repositories/" + r.name + "/annotation?item=" + queryEscape(item.Value()) +
		"&type=" + queryEscape(typ.Value())
	data, err := r.client.do(context.Background(), http.MethodGet, path, nil, http.StatusOK, true)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Status == http.StatusNotFound {
			r.setErr(nil) // a clean "no such annotation" answer
		} else {
			r.setErr(err)
		}
		return evidence.Null, false
	}
	var x AnnotationXML
	if err := xml.Unmarshal(data, &x); err != nil {
		r.setErr(&DecodeError{Path: path, Err: err})
		return evidence.Null, false
	}
	v, err := decodeValue(x.Kind, x.Value)
	if err != nil {
		r.setErr(&DecodeError{Path: path, Err: err})
		return evidence.Null, false
	}
	r.setErr(nil)
	return v, true
}

// Enrich implements annotstore.Store with a single bulk round trip.
func (r *RemoteRepository) Enrich(m *evidence.Map, types []rdf.Term) int {
	req := NewEnvelope(evidence.NewMap(m.Items()...))
	var typeStrs []string
	for _, t := range types {
		typeStrs = append(typeStrs, t.Value())
	}
	req.Config.Set("types", strings.Join(typeStrs, ","))
	body, err := req.Marshal()
	if err != nil {
		r.setErr(err)
		return 0
	}
	path := "/repositories/" + r.name + "/enrich"
	data, err := r.client.do(context.Background(), http.MethodPost, path, body, http.StatusOK, true)
	if err != nil {
		r.setErr(err)
		return 0
	}
	resp, err := UnmarshalEnvelope(data)
	if err != nil {
		r.setErr(&DecodeError{Path: path, Err: err})
		return 0
	}
	enriched, err := resp.Map()
	if err != nil {
		r.setErr(&DecodeError{Path: path, Err: err})
		return 0
	}
	r.setErr(nil)
	n := 0
	for _, item := range enriched.Items() {
		for _, typ := range types {
			if v := enriched.Get(item, typ); !v.IsNull() {
				m.Set(item, typ, v)
				n++
			}
		}
	}
	return n
}

// Items implements annotstore.Store.
func (r *RemoteRepository) Items() []evidence.Item {
	var ds DataSet
	if err := r.client.getXML(context.Background(), "/repositories/"+r.name+"/items", &ds); err != nil {
		r.setErr(err)
		return nil
	}
	r.setErr(nil)
	out := make([]evidence.Item, len(ds.Items))
	for i, it := range ds.Items {
		out[i] = rdf.IRI(it.URI)
	}
	return out
}

// Len implements annotstore.Store (one round trip via the listing).
func (r *RemoteRepository) Len() int {
	var list struct {
		Repos []RepoInfo `xml:"Repository"`
	}
	if err := r.client.getXML(context.Background(), "/repositories", &list); err != nil {
		r.setErr(err)
		return 0
	}
	r.setErr(nil)
	for _, info := range list.Repos {
		if info.Name == r.name {
			return info.Len
		}
	}
	return 0
}

// Clear implements annotstore.Store. Clearing is set-semantic (clearing
// twice equals clearing once), so the call is marked replayable.
func (r *RemoteRepository) Clear() {
	_, err := r.client.do(context.Background(), http.MethodDelete,
		"/repositories/"+r.name+"/annotations", nil, http.StatusNoContent, true)
	r.setErr(err)
}

// Query implements annotstore.Store. SPARQL evaluation is read-only, so
// the call is marked replayable.
func (r *RemoteRepository) Query(query string) (*sparql.Result, error) {
	path := "/repositories/" + r.name + "/sparql"
	data, err := r.client.do(context.Background(), http.MethodPost, path, []byte(query), http.StatusOK, true)
	if err != nil {
		return nil, err
	}
	var x ResultsXML
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, &DecodeError{Path: path, Err: err}
	}
	return decodeResults(x)
}

func queryEscape(s string) string {
	// Minimal escaping for the characters that appear in IRIs/URNs.
	replacer := strings.NewReplacer("%", "%25", "&", "%26", "+", "%2B", " ", "%20", "#", "%23", "?", "%3F")
	return replacer.Replace(s)
}

var _ annotstore.Store = (*RemoteRepository)(nil)
