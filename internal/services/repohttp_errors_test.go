package services

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// These tests pin the repository proxy's behaviour when the far side
// misbehaves: every failure mode must surface as a typed error —
// *StatusError for non-2xx answers, *DecodeError for malformed or
// truncated bodies — either on the method's own error return or, for
// the error-less annotstore.Store methods, via LastError. A wire
// failure must never be silently indistinguishable from "no data".

func brokenServer(t *testing.T, handler http.HandlerFunc) *Client {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return &Client{BaseURL: srv.URL}
}

func sampleAnnotation() annotstore.Annotation {
	return annotstore.Annotation{
		Item: item(0), Type: ontology.HitRatio, Value: evidence.Float(0.5),
	}
}

func TestRemoteRepositoryNon2xxSurfacesStatusError(t *testing.T) {
	client := brokenServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend on fire", http.StatusInternalServerError)
	})
	remote := NewRemoteRepository(client, "default", true)

	var se *StatusError

	if _, ok := remote.Get(item(0), ontology.HitRatio); ok {
		t.Error("Get against a 500 server should miss")
	}
	if err := remote.LastError(); !errors.As(err, &se) || se.Status != 500 {
		t.Errorf("Get LastError = %v, want *StatusError with status 500", err)
	}

	if err := remote.Put(sampleAnnotation()); !errors.As(err, &se) || se.Status != 500 {
		t.Errorf("Put error = %v, want *StatusError with status 500", err)
	}

	m := evidence.NewMap(item(0))
	if n := remote.Enrich(m, []rdf.Term{ontology.HitRatio}); n != 0 {
		t.Errorf("Enrich against a 500 server added %d", n)
	}
	if err := remote.LastError(); !errors.As(err, &se) {
		t.Errorf("Enrich LastError = %v, want *StatusError", err)
	}

	if got := remote.Items(); got != nil {
		t.Errorf("Items against a 500 server = %v", got)
	}
	if err := remote.LastError(); !errors.As(err, &se) {
		t.Errorf("Items LastError = %v, want *StatusError", err)
	}

	if n := remote.Len(); n != 0 {
		t.Errorf("Len against a 500 server = %d", n)
	}
	if _, err := remote.Query("ASK { ?a ?b ?c . }"); !errors.As(err, &se) {
		t.Errorf("Query error = %v, want *StatusError", err)
	}
	if _, err := client.ScavengeRepositories(context.Background()); !errors.As(err, &se) {
		t.Errorf("ScavengeRepositories error = %v, want *StatusError", err)
	}
}

func TestRemoteRepositoryMalformedXMLSurfacesDecodeError(t *testing.T) {
	client := brokenServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, `<Annotati{{{ not xml at all`)
	})
	remote := NewRemoteRepository(client, "default", true)

	var de *DecodeError

	if _, ok := remote.Get(item(0), ontology.HitRatio); ok {
		t.Error("Get of garbage XML should miss")
	}
	if err := remote.LastError(); !errors.As(err, &de) {
		t.Errorf("Get LastError = %v, want *DecodeError", err)
	}

	m := evidence.NewMap(item(0))
	if n := remote.Enrich(m, []rdf.Term{ontology.HitRatio}); n != 0 {
		t.Errorf("Enrich of garbage XML added %d", n)
	}
	if err := remote.LastError(); !errors.As(err, &de) {
		t.Errorf("Enrich LastError = %v, want *DecodeError", err)
	}

	if _, err := remote.Query("ASK { ?a ?b ?c . }"); !errors.As(err, &de) {
		t.Errorf("Query error = %v, want *DecodeError", err)
	}
	if _, err := client.ScavengeRepositories(context.Background()); !errors.As(err, &de) {
		t.Errorf("ScavengeRepositories error = %v, want *DecodeError", err)
	}
}

func TestRemoteRepositoryMidBodyResetSurfacesDecodeError(t *testing.T) {
	// The handler promises 4096 bytes, writes 16, and returns; the server
	// tears the connection down mid-body and the client's read ends in an
	// unexpected EOF. That must surface as a typed decode failure, not an
	// empty-but-"successful" result.
	client := brokenServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "4096")
		w.Header().Set("Content-Type", "application/xml")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "<Annotations><an")
	})
	remote := NewRemoteRepository(client, "default", true)

	if _, ok := remote.Get(item(0), ontology.HitRatio); ok {
		t.Error("Get over a reset connection should miss")
	}
	err := remote.LastError()
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("Get LastError = %v, want *DecodeError", err)
	}
	if !errors.Is(de.Err, io.ErrUnexpectedEOF) {
		t.Errorf("underlying cause = %v, want unexpected EOF", de.Err)
	}

	if _, err := remote.Query("ASK { ?a ?b ?c . }"); !errors.As(err, &de) {
		t.Errorf("Query error = %v, want *DecodeError", err)
	}
}

func TestRemoteRepositoryCleanMissClearsLastError(t *testing.T) {
	// A 404 on the annotation route is a real answer ("no such
	// annotation"), not a failure: it must clear any sticky error so a
	// recovered repository reads as healthy again.
	fail := true
	client := brokenServer(t, func(w http.ResponseWriter, r *http.Request) {
		if fail {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "no such annotation", http.StatusNotFound)
	})
	remote := NewRemoteRepository(client, "default", true)

	remote.Get(item(0), ontology.HitRatio)
	if remote.LastError() == nil {
		t.Fatal("503 should record an error")
	}
	fail = false
	if _, ok := remote.Get(item(0), ontology.HitRatio); ok {
		t.Error("404 should miss")
	}
	if err := remote.LastError(); err != nil {
		t.Errorf("clean 404 miss should clear LastError, got %v", err)
	}
}
