package services

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/rdf"
	"qurator/internal/sparql"
)

// remoteWorld hosts a registry with one populated persistent repository
// and returns a client pointed at it.
func remoteWorld(t *testing.T) (*annotstore.Registry, *Client, func()) {
	t.Helper()
	reg := annotstore.NewRegistry()
	def := reg.MustGet("default")
	for i := 0; i < 5; i++ {
		err := def.Put(annotstore.Annotation{
			Item:  item(i),
			Type:  ontology.HitRatio,
			Value: evidence.Float(float64(i) / 10),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(RepositoryHandler(reg))
	return reg, &Client{BaseURL: srv.URL}, srv.Close
}

func TestScavengeRepositories(t *testing.T) {
	_, client, done := remoteWorld(t)
	defer done()
	repos, err := client.ScavengeRepositories(context.Background())
	if err != nil {
		t.Fatalf("ScavengeRepositories: %v", err)
	}
	if len(repos) != 2 {
		t.Fatalf("found %d repositories, want 2 (cache, default)", len(repos))
	}
	byName := map[string]*RemoteRepository{}
	for _, r := range repos {
		byName[r.Name()] = r
	}
	if !byName["default"].Persistent() || byName["cache"].Persistent() {
		t.Error("persistence flags wrong")
	}
}

func TestRemoteGetPutLen(t *testing.T) {
	reg, client, done := remoteWorld(t)
	defer done()
	remote := NewRemoteRepository(client, "default", true)

	// Get an existing annotation.
	v, ok := remote.Get(item(3), ontology.HitRatio)
	if !ok || !v.Equal(evidence.Float(0.3)) {
		t.Errorf("remote Get = %v, %v", v, ok)
	}
	// Missing annotation.
	if _, ok := remote.Get(item(99), ontology.HitRatio); ok {
		t.Error("missing annotation should miss")
	}
	// Put through the proxy lands in the server-side store.
	err := remote.Put(annotstore.Annotation{
		Item: item(7), Type: ontology.MassCoverage, Value: evidence.String_("x y"),
	})
	if err != nil {
		t.Fatalf("remote Put: %v", err)
	}
	local := reg.MustGet("default")
	v, ok = local.Get(item(7), ontology.MassCoverage)
	if !ok || v.AsString() != "x y" {
		t.Errorf("server-side value = %v, %v", v, ok)
	}
	if remote.Len() != 6 {
		t.Errorf("remote Len = %d, want 6", remote.Len())
	}
	if got := remote.Items(); len(got) != 6 {
		t.Errorf("remote Items = %d", len(got))
	}
}

func TestRemoteEnrichBulk(t *testing.T) {
	_, client, done := remoteWorld(t)
	defer done()
	remote := NewRemoteRepository(client, "default", true)
	m := evidence.NewMap(item(0), item(1), item(2), item(99))
	n := remote.Enrich(m, []rdf.Term{ontology.HitRatio})
	if n != 3 {
		t.Errorf("remote Enrich added %d, want 3", n)
	}
	if !m.Get(item(2), ontology.HitRatio).Equal(evidence.Float(0.2)) {
		t.Error("enriched value wrong")
	}
	if m.Has(item(99), ontology.HitRatio) {
		t.Error("unknown item should stay null")
	}
}

func TestRemoteClear(t *testing.T) {
	reg, client, done := remoteWorld(t)
	defer done()
	remote := NewRemoteRepository(client, "default", true)
	remote.Clear()
	if reg.MustGet("default").Len() != 0 {
		t.Error("remote Clear did not clear the server store")
	}
}

func TestRemoteSPARQL(t *testing.T) {
	_, client, done := remoteWorld(t)
	defer done()
	remote := NewRemoteRepository(client, "default", true)
	res, err := remote.Query(fmt.Sprintf(
		"PREFIX q: <%s>\nSELECT ?v WHERE { <%s> q:containsEvidence ?n . ?n q:evidenceValue ?v . }",
		ontology.QuratorNS, item(3).Value()))
	if err != nil {
		t.Fatalf("remote Query: %v", err)
	}
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if f, ok := res.Bindings[0]["v"].Float(); !ok || f != 0.3 {
		t.Errorf("value = %v", res.Bindings[0]["v"])
	}
	// Bad query surfaces the server-side error.
	if _, err := remote.Query("NOT SPARQL"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestRemoteRepositoryInRegistry(t *testing.T) {
	// The proxy is a Store: register it locally and use it through the
	// normal framework machinery (enrichment service, ClearCaches).
	_, client, done := remoteWorld(t)
	defer done()

	local := annotstore.NewRegistry()
	local.Add(NewRemoteRepository(client, "default", true))

	de := &EnrichmentService{ServiceName: "DE", Repositories: local}
	req := NewEnvelope(evidence.NewMap(item(0), item(1)))
	req.Config.Set(SourceParam(ontology.HitRatio), "default")
	resp, err := de.Invoke(context.Background(), req)
	if err != nil {
		t.Fatalf("enrichment against remote store: %v", err)
	}
	m, _ := resp.Map()
	if !m.Get(item(1), ontology.HitRatio).Equal(evidence.Float(0.1)) {
		t.Error("enrichment through remote repository failed")
	}
}

func TestRemoteAnnotatorWritesRemoteRepository(t *testing.T) {
	// Full distributed flow: a local annotator service configured with a
	// registry whose "cache" is remote — annotations land on the server.
	serverReg, client, done := remoteWorld(t)
	defer done()

	localReg := annotstore.NewRegistry()
	localReg.Add(NewRemoteRepository(client, "cache", false))

	svc := &AnnotatorService{
		ServiceName:  "ann",
		Repositories: localReg,
		Annotator: ops.AnnotatorFunc{
			ClassIRI: ontology.ImprintOutputAnnotation,
			Fn: func(items []evidence.Item, repo annotstore.Store) error {
				for _, it := range items {
					if err := repo.Put(annotstore.Annotation{
						Item: it, Type: ontology.HitRatio, Value: evidence.Float(0.5),
					}); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
	req := NewEnvelope(evidence.NewMap(item(0), item(1)))
	req.Config.Set("repositoryRef", "cache")
	if _, err := svc.Invoke(context.Background(), req); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if serverReg.MustGet("cache").Len() != 2 {
		t.Errorf("server cache has %d annotations, want 2", serverReg.MustGet("cache").Len())
	}
}

func TestRepositoryGraphDump(t *testing.T) {
	_, client, done := remoteWorld(t)
	defer done()
	data, err := client.do(context.Background(), "GET", "/repositories/default/graph", nil, 200, true)
	if err != nil {
		t.Fatalf("graph dump: %v", err)
	}
	out := string(data)
	if !strings.Contains(out, "@prefix q:") || !strings.Contains(out, "q:containsEvidence") {
		t.Errorf("turtle dump incomplete:\n%s", out)
	}
}

func TestRepositoryHandlerErrors(t *testing.T) {
	_, client, done := remoteWorld(t)
	defer done()
	// Unknown repository → 404 on every route.
	ghost := NewRemoteRepository(client, "ghost", false)
	if _, ok := ghost.Get(item(0), ontology.HitRatio); ok {
		t.Error("unknown repository Get should miss")
	}
	if err := ghost.Put(annotstore.Annotation{Item: item(0), Type: ontology.HitRatio, Value: evidence.Float(1)}); err == nil {
		t.Error("unknown repository Put should fail")
	}
	if _, err := ghost.Query("ASK { ?a ?b ?c . }"); err == nil {
		t.Error("unknown repository Query should fail")
	}
	// Invalid annotation batch → 422.
	bad := NewRemoteRepository(client, "default", true)
	if err := bad.Put(annotstore.Annotation{Item: rdf.Term{}, Type: ontology.HitRatio, Value: evidence.Float(1)}); err == nil {
		t.Error("invalid annotation should fail server-side")
	}
}

var sparqlResultFixture = sparql.Result{
	Vars: []string{"x", "v"},
	Bindings: []sparql.Binding{
		{"x": rdf.IRI("urn:a"), "v": rdf.Double(0.5)},
		{"x": rdf.IRI("urn:b"), "v": rdf.Literal("label with \"quotes\"")},
		{"x": rdf.Blank("b1")}, // unbound v
	},
	Ok: true,
}

func TestResultsXMLRoundTrip(t *testing.T) {
	res := &sparqlResultFixture
	enc := encodeResults(res)
	back, err := decodeResults(enc)
	if err != nil {
		t.Fatalf("decodeResults: %v", err)
	}
	if !reflect.DeepEqual(back.Vars, res.Vars) || back.Ok != res.Ok {
		t.Errorf("metadata lost: %+v", back)
	}
	if len(back.Bindings) != len(res.Bindings) {
		t.Fatalf("rows = %d", len(back.Bindings))
	}
	for i := range res.Bindings {
		if !reflect.DeepEqual(back.Bindings[i], res.Bindings[i]) {
			t.Errorf("row %d: %v vs %v", i, back.Bindings[i], res.Bindings[i])
		}
	}
}
