package services

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"qurator/internal/annotstore"
	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/rdf"
)

// Kind classifies a service by the abstract operator it implements.
type Kind string

// Service kinds, mirroring the §4.1 operator types.
const (
	KindAnnotation Kind = "annotation"
	KindAssertion  Kind = "quality-assertion"
	KindEnrichment Kind = "data-enrichment"
	KindAction     Kind = "action"
)

// Scope declares how much of the data set a service must see per
// invocation. Item-scoped services compute each item's result from that
// item's evidence row alone, so the data plane may shard their input into
// item chunks and merge the responses without changing the output.
// Collection-scoped services (e.g. the §5.1 statistical classifier, whose
// thresholds derive from the whole score distribution) must receive the
// entire map in one envelope.
type Scope string

// Service scopes.
const (
	ScopeItem       Scope = "item"
	ScopeCollection Scope = "collection"
)

// Info describes a deployed service — the WSDL-surrogate the registry and
// scavenger exchange.
type Info struct {
	// Name is the deployment name (unique per host).
	Name string `xml:"name,attr"`
	// Type is the IQ-ontology class IRI of the operator.
	Type string `xml:"type,attr"`
	// Kind is the abstract operator kind.
	Kind Kind `xml:"kind,attr"`
	// Scope declares the sharding contract; empty means ScopeCollection
	// (the conservative default — never shard a service that did not
	// declare item scope).
	Scope Scope `xml:"scope,attr,omitempty"`
	// Inputs and Outputs list evidence types / tags (IRIs).
	Inputs  []string `xml:"input,omitempty"`
	Outputs []string `xml:"output,omitempty"`
}

// QualityService is the single interface all Qurator services export
// (paper §5: "all QA services export the same WSDL interface").
type QualityService interface {
	Describe() Info
	Invoke(ctx context.Context, req *Envelope) (*Envelope, error)
}

func iriStrings(terms []rdf.Term) []string {
	out := make([]string, len(terms))
	for i, t := range terms {
		out[i] = t.Value()
	}
	return out
}

// scopeOf derives a service's scope from its operator: an ops.ItemWise
// declaration wins; otherwise def applies.
func scopeOf(op any, def Scope) Scope {
	if iw, ok := op.(ops.ItemWise); ok {
		if iw.ItemWise() {
			return ScopeItem
		}
		return ScopeCollection
	}
	return def
}

// AssertionService exposes an ops.QualityAssertion as a service: the
// request carries the enriched annotation map; the response carries the
// map augmented with the QA's tags/classifications.
type AssertionService struct {
	ServiceName string
	QA          ops.QualityAssertion
}

// Describe implements QualityService.
func (s *AssertionService) Describe() Info {
	return Info{
		Name: s.ServiceName,
		Type: s.QA.Class().Value(),
		Kind: KindAssertion,
		// QAs are collection-scoped unless they declare otherwise
		// (ops.ItemWise) — classification thresholds may derive from the
		// whole distribution.
		Scope:   scopeOf(s.QA, ScopeCollection),
		Inputs:  iriStrings(s.QA.Requires()),
		Outputs: iriStrings(s.QA.Provides()),
	}
}

// Invoke implements QualityService.
func (s *AssertionService) Invoke(_ context.Context, req *Envelope) (*Envelope, error) {
	m, err := req.Map()
	if err != nil {
		return nil, err
	}
	if err := s.QA.Assert(m); err != nil {
		return nil, fmt.Errorf("services: %s: %w", s.ServiceName, err)
	}
	resp := NewEnvelope(m)
	resp.Service = s.ServiceName
	return resp, nil
}

// AnnotatorService exposes an ops.Annotator. The request's data set names
// the items to annotate; the "repositoryRef" config parameter selects the
// target repository from the service's registry. Annotators return an
// empty map — they only write to repositories (paper §6.1: "their output
// is empty, since annotators only write to a repository").
type AnnotatorService struct {
	ServiceName  string
	Annotator    ops.Annotator
	Repositories *annotstore.Registry
}

// Describe implements QualityService.
func (s *AnnotatorService) Describe() Info {
	return Info{
		Name: s.ServiceName,
		Type: s.Annotator.Class().Value(),
		Kind: KindAnnotation,
		// Annotators are arbitrary user code over the whole batch (an
		// AnnotatorFunc may key evidence off batch position), so the
		// conservative default is collection scope; a genuinely item-wise
		// annotator opts into sharding via ops.ItemWise.
		Scope:   scopeOf(s.Annotator, ScopeCollection),
		Outputs: iriStrings(s.Annotator.Provides()),
	}
}

// Invoke implements QualityService.
func (s *AnnotatorService) Invoke(_ context.Context, req *Envelope) (*Envelope, error) {
	repoName, ok := req.Config.Get("repositoryRef")
	if !ok {
		repoName = "cache"
	}
	repo, ok := s.Repositories.Get(repoName)
	if !ok {
		return nil, fmt.Errorf("services: %s: unknown repository %q", s.ServiceName, repoName)
	}
	m, err := req.Map()
	if err != nil {
		return nil, err
	}
	if err := s.Annotator.Annotate(m.Items(), repo); err != nil {
		return nil, fmt.Errorf("services: %s: %w", s.ServiceName, err)
	}
	resp := &Envelope{Service: s.ServiceName}
	resp.SetMap(evidence.NewMap(m.Items()...))
	return resp, nil
}

// EnrichmentService exposes the pre-defined Data Enrichment operator. Its
// configuration associates evidence types with repositories via config
// parameters of the form "source:<evidence-IRI>" = "<repository name>",
// which is exactly the association the quality-view compiler derives
// (paper §6.1).
type EnrichmentService struct {
	ServiceName  string
	Repositories *annotstore.Registry
}

// Describe implements QualityService.
func (s *EnrichmentService) Describe() Info {
	// Enrichment fetches stored values keyed (d, e) — strictly per item.
	return Info{Name: s.ServiceName, Type: ontology.Q("DataEnrichment").Value(), Kind: KindEnrichment, Scope: ScopeItem}
}

// SourceParam builds the config parameter name associating an evidence
// type with a repository.
func SourceParam(evidenceType rdf.Term) string { return "source:" + evidenceType.Value() }

// Invoke implements QualityService.
func (s *EnrichmentService) Invoke(_ context.Context, req *Envelope) (*Envelope, error) {
	var de ops.DataEnrichment
	for _, p := range req.Config.Params {
		if !strings.HasPrefix(p.Name, "source:") {
			continue
		}
		typ := rdf.IRI(strings.TrimPrefix(p.Name, "source:"))
		repo, ok := s.Repositories.Get(p.Value)
		if !ok {
			return nil, fmt.Errorf("services: %s: unknown repository %q for %v", s.ServiceName, p.Value, typ)
		}
		de.Sources = append(de.Sources, ops.EvidenceSource{Type: typ, Repository: repo})
	}
	// Deterministic source order regardless of config order.
	sort.Slice(de.Sources, func(i, j int) bool {
		return rdf.CompareTerms(de.Sources[i].Type, de.Sources[j].Type) < 0
	})
	m, err := req.Map()
	if err != nil {
		return nil, err
	}
	if _, err := de.Enrich(m); err != nil {
		return nil, err
	}
	resp := NewEnvelope(m)
	resp.Service = s.ServiceName
	return resp, nil
}

// ActionService exposes the filter/splitter actions. Configuration:
//
//	operation      "filter" | "split" (also in Envelope.Operation)
//	condition      the filter condition (operation=filter)
//	group:<name>   one splitter branch condition per parameter
//	var:<ident>    identifier → map-key bindings for the conditions
//
// Conditions are parsed per invocation — they are exactly the part users
// edit between runs (paper §4).
type ActionService struct {
	ServiceName string
}

// Describe implements QualityService.
func (s *ActionService) Describe() Info {
	// Filter and split conditions evaluate one item's evidence at a time.
	return Info{Name: s.ServiceName, Type: ontology.Q("Action").Value(), Kind: KindAction, Scope: ScopeItem}
}

// VarParam builds the config parameter name binding a condition
// identifier to a map key.
func VarParam(ident string) string { return "var:" + ident }

func bindingsFromConfig(cfg Config) condition.Bindings {
	vars := condition.Bindings{}
	for _, p := range cfg.Params {
		if name, ok := strings.CutPrefix(p.Name, "var:"); ok {
			vars[name] = rdf.IRI(p.Value)
		}
	}
	return vars
}

// Invoke implements QualityService.
func (s *ActionService) Invoke(_ context.Context, req *Envelope) (*Envelope, error) {
	m, err := req.Map()
	if err != nil {
		return nil, err
	}
	vars := bindingsFromConfig(req.Config)
	op := req.Operation
	if op == "" {
		op, _ = req.Config.Get("operation")
	}
	switch op {
	case "filter", "":
		src, ok := req.Config.Get("condition")
		if !ok {
			return nil, fmt.Errorf("services: %s: filter without condition", s.ServiceName)
		}
		expr, err := condition.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("services: %s: %w", s.ServiceName, err)
		}
		out, err := (&ops.Filter{Cond: expr, Vars: vars}).Apply(m)
		if err != nil {
			return nil, err
		}
		resp := NewEnvelope(out)
		resp.Service = s.ServiceName
		resp.Operation = "filter"
		return resp, nil
	case "split":
		var groups []ops.SplitGroup
		var order []string
		for _, p := range req.Config.Params {
			name, ok := strings.CutPrefix(p.Name, "group:")
			if !ok {
				continue
			}
			expr, err := condition.Parse(p.Value)
			if err != nil {
				return nil, fmt.Errorf("services: %s: group %q: %w", s.ServiceName, name, err)
			}
			groups = append(groups, ops.SplitGroup{Name: name, Cond: expr})
			order = append(order, name)
		}
		split, err := (&ops.Splitter{Groups: groups, Vars: vars}).Apply(m)
		if err != nil {
			return nil, err
		}
		order = append(order, "default")
		resp := &Envelope{Service: s.ServiceName, Operation: "split"}
		resp.SetGroups(split, order)
		return resp, nil
	default:
		return nil, fmt.Errorf("services: %s: unknown operation %q", s.ServiceName, op)
	}
}

// Registry holds deployed services by name. It is the in-process analogue
// of Taverna's processor collection, and the scavenger's data source.
type Registry struct {
	mu       sync.RWMutex
	services map[string]QualityService
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]QualityService)}
}

// Add deploys a service, replacing any previous one with the same name.
func (r *Registry) Add(s QualityService) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[s.Describe().Name] = s
}

// Get looks up a service by name.
func (r *Registry) Get(name string) (QualityService, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.services[name]
	return s, ok
}

// FindByType returns the services whose operator class matches the IRI —
// how the binding step locates an implementation for an abstract operator
// class (paper §6).
func (r *Registry) FindByType(classIRI string) []QualityService {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []QualityService
	for _, s := range r.services {
		if s.Describe().Type == classIRI {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Describe().Name < out[j].Describe().Name })
	return out
}

// List returns all service descriptions sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s.Describe())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

var (
	_ QualityService = (*AssertionService)(nil)
	_ QualityService = (*AnnotatorService)(nil)
	_ QualityService = (*EnrichmentService)(nil)
	_ QualityService = (*ActionService)(nil)
)
