package services

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qa"
	"qurator/internal/rdf"
)

func item(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:hit:%d", i))
}

func sampleMap(n int) *evidence.Map {
	m := evidence.NewMap()
	for i := 0; i < n; i++ {
		frac := float64(i+1) / float64(n)
		m.Set(item(i), ontology.HitRatio, evidence.Float(frac))
		m.Set(item(i), ontology.Coverage, evidence.Float(frac))
		m.SetClass(item(i), ontology.PIScoreClassification, ontology.ClassMid)
	}
	return m
}

func TestEnvelopeRoundTrip(t *testing.T) {
	m := sampleMap(4)
	m.Set(item(0), ontology.PeptidesCount, evidence.Int(7))
	m.Set(item(1), ontology.EvidenceCode, evidence.String_("TAS"))
	m.Set(item(2), ontology.Q("flag"), evidence.Bool(true))

	env := NewEnvelope(m)
	env.Service = "test"
	env.Config.Set("condition", "x > 1")
	data, err := env.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := UnmarshalEnvelope(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	m2, err := back.Map()
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !reflect.DeepEqual(m.Items(), m2.Items()) {
		t.Errorf("items differ: %v vs %v", m.Items(), m2.Items())
	}
	for _, it := range m.Items() {
		if !reflect.DeepEqual(m.Row(it), m2.Row(it)) {
			t.Errorf("row %v differs:\n%v\n%v", it, m.Row(it), m2.Row(it))
		}
	}
	if v, ok := back.Config.Get("condition"); !ok || v != "x > 1" {
		t.Error("config lost in round trip")
	}
}

func TestEnvelopePreservesItemsWithoutEvidence(t *testing.T) {
	m := evidence.NewMap(item(0), item(1))
	m.Set(item(0), ontology.HitRatio, evidence.Float(0.5))
	env := NewEnvelope(m)
	back, err := env.Map()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("items = %d, want 2 (evidence-less item must survive)", back.Len())
	}
}

func TestEnvelopeDecodeErrors(t *testing.T) {
	bad := []Entry{
		{Item: "urn:x", Key: "urn:k", Kind: "float", Value: "abc"},
		{Item: "urn:x", Key: "urn:k", Kind: "int", Value: "1.5"},
		{Item: "urn:x", Key: "urn:k", Kind: "bool", Value: "yes"},
		{Item: "urn:x", Key: "urn:k", Kind: "quux", Value: "1"},
	}
	for _, e := range bad {
		env := &Envelope{Annotations: AnnotationMapXML{Entries: []Entry{e}}}
		if _, err := env.Map(); err == nil {
			t.Errorf("entry %+v should fail to decode", e)
		}
	}
	env := &Envelope{DataSet: DataSet{Items: []ItemRef{{URI: ""}}}}
	if _, err := env.Map(); err == nil {
		t.Error("empty item URI should fail")
	}
	if _, err := UnmarshalEnvelope([]byte("not xml")); err == nil {
		t.Error("bad XML should fail")
	}
}

func TestConfigSetReplaces(t *testing.T) {
	var c Config
	c.Set("a", "1")
	c.Set("a", "2")
	c.Set("b", "3")
	if v, _ := c.Get("a"); v != "2" {
		t.Errorf("a = %q", v)
	}
	if len(c.Params) != 2 {
		t.Errorf("params = %v", c.Params)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Error("absent param should miss")
	}
}

func TestAssertionService(t *testing.T) {
	svc := &AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(ontology.Q("tag/HR_MC")),
	}
	info := svc.Describe()
	if info.Kind != KindAssertion || info.Type != ontology.UniversalPIScore2.Value() {
		t.Errorf("Describe = %+v", info)
	}
	resp, err := svc.Invoke(context.Background(), NewEnvelope(sampleMap(5)))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	out, err := resp.Map()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range out.Items() {
		if !out.Has(it, ontology.Q("tag/HR_MC")) {
			t.Errorf("score missing on %v", it)
		}
	}
}

func TestAnnotatorServiceWritesRepository(t *testing.T) {
	repos := annotstore.NewRegistry()
	svc := &AnnotatorService{
		ServiceName:  "ImprintOutputAnnotator",
		Repositories: repos,
		Annotator: ops.AnnotatorFunc{
			ClassIRI: ontology.ImprintOutputAnnotation,
			Types:    []rdf.Term{ontology.HitRatio},
			Fn: func(items []evidence.Item, repo annotstore.Store) error {
				for i, it := range items {
					if err := repo.Put(annotstore.Annotation{
						Item: it, Type: ontology.HitRatio, Value: evidence.Float(float64(i)),
					}); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
	req := NewEnvelope(evidence.NewMap(item(0), item(1)))
	req.Config.Set("repositoryRef", "cache")
	resp, err := svc.Invoke(context.Background(), req)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// Annotators return the (evidence-less) data set.
	m, _ := resp.Map()
	if m.Len() != 2 || len(m.Keys()) != 0 {
		t.Errorf("annotator response should be empty map over the data set, got %v", m)
	}
	cache := repos.MustGet("cache")
	if cache.Len() != 2 {
		t.Errorf("repository has %d annotations, want 2", cache.Len())
	}
	// Unknown repository is a fault.
	req.Config.Set("repositoryRef", "nope")
	if _, err := svc.Invoke(context.Background(), req); err == nil {
		t.Error("unknown repositoryRef should fail")
	}
}

func TestEnrichmentService(t *testing.T) {
	repos := annotstore.NewRegistry()
	cache := repos.MustGet("cache")
	for i := 0; i < 3; i++ {
		cache.Put(annotstore.Annotation{Item: item(i), Type: ontology.HitRatio, Value: evidence.Float(float64(i))})
	}
	svc := &EnrichmentService{ServiceName: "DE", Repositories: repos}
	req := NewEnvelope(evidence.NewMap(item(0), item(1), item(2)))
	req.Config.Set(SourceParam(ontology.HitRatio), "cache")
	resp, err := svc.Invoke(context.Background(), req)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	m, _ := resp.Map()
	for i := 0; i < 3; i++ {
		if !m.Get(item(i), ontology.HitRatio).Equal(evidence.Float(float64(i))) {
			t.Errorf("item %d not enriched", i)
		}
	}
	req.Config.Set(SourceParam(ontology.MassCoverage), "ghost-repo")
	if _, err := svc.Invoke(context.Background(), req); err == nil {
		t.Error("unknown source repository should fail")
	}
}

func TestActionServiceFilter(t *testing.T) {
	svc := &ActionService{ServiceName: "act"}
	req := NewEnvelope(sampleMap(10))
	req.Operation = "filter"
	req.Config.Set("condition", "hr >= 0.5")
	req.Config.Set(VarParam("hr"), ontology.HitRatio.Value())
	resp, err := svc.Invoke(context.Background(), req)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	m, _ := resp.Map()
	if m.Len() != 6 { // 0.5, 0.6, ..., 1.0
		t.Errorf("filtered to %d items, want 6", m.Len())
	}
	// Missing condition and bad condition fail.
	req2 := NewEnvelope(sampleMap(2))
	req2.Operation = "filter"
	if _, err := svc.Invoke(context.Background(), req2); err == nil {
		t.Error("filter without condition should fail")
	}
	req2.Config.Set("condition", ">>>")
	if _, err := svc.Invoke(context.Background(), req2); err == nil {
		t.Error("unparseable condition should fail")
	}
}

func TestActionServiceSplit(t *testing.T) {
	svc := &ActionService{ServiceName: "act"}
	req := NewEnvelope(sampleMap(10))
	req.Operation = "split"
	req.Config.Set("group:strong", "hr >= 0.8")
	req.Config.Set("group:weak", "hr <= 0.3")
	req.Config.Set(VarParam("hr"), ontology.HitRatio.Value())
	resp, err := svc.Invoke(context.Background(), req)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	groups, err := resp.GroupMaps()
	if err != nil {
		t.Fatal(err)
	}
	if groups["strong"].Len() != 3 || groups["weak"].Len() != 3 || groups["default"].Len() != 4 {
		t.Errorf("groups: strong=%d weak=%d default=%d",
			groups["strong"].Len(), groups["weak"].Len(), groups["default"].Len())
	}
	if _, err := svc.Invoke(context.Background(), &Envelope{Operation: "explode"}); err == nil {
		t.Error("unknown operation should fail")
	}
}

func TestCoreServiceDescriptions(t *testing.T) {
	ann := &AnnotatorService{ServiceName: "ann", Annotator: ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    []rdf.Term{ontology.HitRatio},
	}}
	if info := ann.Describe(); info.Kind != KindAnnotation || len(info.Outputs) != 1 {
		t.Errorf("annotator Describe = %+v", info)
	}
	de := &EnrichmentService{ServiceName: "de"}
	if info := de.Describe(); info.Kind != KindEnrichment || info.Name != "de" {
		t.Errorf("enrichment Describe = %+v", info)
	}
	act := &ActionService{ServiceName: "act"}
	if info := act.Describe(); info.Kind != KindAction {
		t.Errorf("action Describe = %+v", info)
	}
}

func TestRegistryFindByType(t *testing.T) {
	reg := NewRegistry()
	reg.Add(&AssertionService{ServiceName: "s1", QA: qa.NewUniversalPIScore(ontology.Q("t1"))})
	reg.Add(&AssertionService{ServiceName: "s2", QA: qa.NewUniversalPIScore(ontology.Q("t2"))})
	reg.Add(&ActionService{ServiceName: "act"})
	found := reg.FindByType(ontology.UniversalPIScore2.Value())
	if len(found) != 2 {
		t.Fatalf("FindByType = %d services", len(found))
	}
	if found[0].Describe().Name != "s1" {
		t.Error("FindByType should sort by name")
	}
	if got := reg.List(); len(got) != 3 {
		t.Errorf("List = %v", got)
	}
	if _, ok := reg.Get("nope"); ok {
		t.Error("unknown service should miss")
	}
}

func TestHTTPTransportAndScavenger(t *testing.T) {
	// Host a registry over HTTP; scavenge and invoke remotely — the §5
	// deployment path end to end.
	reg := NewRegistry()
	reg.Add(&AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(ontology.Q("tag/HR_MC")),
	})
	reg.Add(&ActionService{ServiceName: "act"})
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	client := &Client{BaseURL: srv.URL}
	found, err := client.Scavenge(context.Background())
	if err != nil {
		t.Fatalf("Scavenge: %v", err)
	}
	if len(found) != 2 {
		t.Fatalf("scavenged %d services, want 2", len(found))
	}
	// Add the proxies to a local registry and invoke through it.
	local := NewRegistry()
	for _, s := range found {
		local.Add(s)
	}
	svc, ok := local.Get("HR_MC_score")
	if !ok {
		t.Fatal("scavenged service not registered")
	}
	resp, err := svc.Invoke(context.Background(), NewEnvelope(sampleMap(4)))
	if err != nil {
		t.Fatalf("remote Invoke: %v", err)
	}
	m, _ := resp.Map()
	if !m.Has(item(0), ontology.Q("tag/HR_MC")) {
		t.Error("remote invocation produced no scores")
	}
}

func TestHTTPFaultPropagation(t *testing.T) {
	reg := NewRegistry()
	reg.Add(&ActionService{ServiceName: "act"})
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	// Service fault (bad condition) surfaces as an error with the fault text.
	req := NewEnvelope(sampleMap(1))
	req.Operation = "filter"
	_, err := client.Invoke(context.Background(), "act", req)
	if err == nil || !strings.Contains(err.Error(), "condition") {
		t.Errorf("fault not propagated: %v", err)
	}
	// Unknown service is a transport-level 404.
	if _, err := client.Invoke(context.Background(), "ghost", req); err == nil {
		t.Error("unknown service should fail")
	}
}

func BenchmarkEnvelopeRoundTrip(b *testing.B) {
	m := sampleMap(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := NewEnvelope(m)
		data, err := env.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		back, err := UnmarshalEnvelope(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := back.Map(); err != nil {
			b.Fatal(err)
		}
	}
}
