package sparql

import (
	"fmt"
	"strings"

	"qurator/internal/rdf"
)

// QueryForm distinguishes SELECT from ASK queries.
type QueryForm int

const (
	// FormSelect is a SELECT query returning variable bindings.
	FormSelect QueryForm = iota + 1
	// FormAsk is an ASK query returning a boolean.
	FormAsk
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Distinct bool
	// Vars are the projected variable names; empty means SELECT *.
	Vars    []string
	Where   *GroupPattern
	OrderBy []OrderKey
	Limit   int // -1 means unset
	Offset  int
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Var  string
	Desc bool
}

// GroupPattern is a group graph pattern: triple patterns, filters, and
// optional sub-groups, evaluated as a conjunction.
type GroupPattern struct {
	Patterns  []TriplePattern
	Filters   []Expr
	Optionals []*GroupPattern
	Unions    [][]*GroupPattern // each union is a list of alternative groups
}

// TriplePattern is a triple with variables allowed in any position.
// A position holds either a bound rdf.Term (Var == "") or a variable name.
type TriplePattern struct {
	S, P, O PatternTerm
}

// PatternTerm is one position of a triple pattern.
type PatternTerm struct {
	Var  string   // non-empty means a variable
	Term rdf.Term // used when Var == ""
}

// IsVar reports whether the position is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	return p.Term.String()
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// Binding is a solution mapping from variable names to RDF terms.
type Binding map[string]rdf.Term

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

func (b Binding) String() string {
	parts := make([]string, 0, len(b))
	for k, v := range b {
		parts = append(parts, "?"+k+"="+v.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Expr is a FILTER expression node.
type Expr interface {
	// Eval computes the expression value under a binding. Errors follow
	// SPARQL semantics: an erroring filter eliminates the solution.
	Eval(b Binding) (Value, error)
	String() string
}

// Value is the result of evaluating an expression: an RDF term or an
// ephemeral boolean/number produced by operators.
type Value struct {
	Term rdf.Term
	// IsBool/IsNum are set for operator results that have no term form.
	IsBool bool
	Bool   bool
	IsNum  bool
	Num    float64
}

// BoolVal wraps a boolean value.
func BoolVal(b bool) Value { return Value{IsBool: true, Bool: b} }

// NumVal wraps a numeric value.
func NumVal(f float64) Value { return Value{IsNum: true, Num: f} }

// TermVal wraps an RDF term value.
func TermVal(t rdf.Term) Value { return Value{Term: t} }

// EffectiveBool computes the SPARQL effective boolean value.
func (v Value) EffectiveBool() (bool, error) {
	switch {
	case v.IsBool:
		return v.Bool, nil
	case v.IsNum:
		return v.Num != 0, nil
	case v.Term.IsLiteral():
		if b, ok := v.Term.Bool(); ok {
			return b, nil
		}
		if f, ok := v.Term.Float(); ok {
			return f != 0, nil
		}
		return v.Term.Value() != "", nil
	default:
		return false, fmt.Errorf("sparql: no effective boolean value for %v", v)
	}
}

// Numeric converts the value to a float64 if possible.
func (v Value) Numeric() (float64, bool) {
	switch {
	case v.IsNum:
		return v.Num, true
	case v.IsBool:
		return 0, false
	default:
		return v.Term.Float()
	}
}
