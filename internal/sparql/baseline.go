package sparql

import "qurator/internal/rdf"

// ExecBaseline parses and executes a query with the materializing
// reference evaluator: every stage builds a full []Binding before the
// next runs, patterns are ordered by boundness only, and each pattern
// match clones its input binding. It is kept as the correctness oracle
// for the streaming evaluator (see the equivalence property test) and as
// the comparison baseline in benchmarks; production paths use Exec.
func ExecBaseline(d rdf.Dataset, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.ExecBaseline(d)
}

// ExecBaseline executes the parsed query with the materializing
// reference evaluator. See ExecBaseline for when to use it.
func (q *Query) ExecBaseline(d rdf.Dataset) (*Result, error) {
	sols, err := evalGroup(d, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == FormAsk {
		return &Result{Ok: len(sols) > 0}, nil
	}

	vars := q.Vars
	if len(vars) == 0 {
		vars = collectVars(q.Where)
	}

	// Project.
	projected := make([]Binding, len(sols))
	for i, sol := range sols {
		row := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				row[v] = t
			}
		}
		projected[i] = row
	}

	if q.Distinct {
		projected = distinct(vars, projected)
	}

	if len(q.OrderBy) > 0 {
		sortBindings(projected, q.OrderBy)
	} else {
		// Deterministic default order keyed on projected values, so
		// repeated queries over the same graph return identical rows.
		sortBindings(projected, defaultOrder(vars))
	}

	// OFFSET/LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}

	return &Result{Vars: vars, Bindings: projected}, nil
}

func distinct(vars []string, rows []Binding) []Binding {
	seen := make(map[string]struct{}, len(rows))
	var key []byte
	out := rows[:0]
	for _, row := range rows {
		key = key[:0]
		for _, v := range vars {
			key = row[v].AppendKey(key)
			key = append(key, 0)
		}
		if _, ok := seen[string(key)]; ok {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, row)
	}
	return out
}

// evalGroup evaluates a group graph pattern, extending each input binding.
func evalGroup(d rdf.Dataset, group *GroupPattern, input []Binding) ([]Binding, error) {
	if group == nil {
		return input, nil
	}
	sols := input

	// Order triple patterns greedily by boundness for join efficiency:
	// patterns with more constants (or already-bound variables) first.
	patterns := append([]TriplePattern(nil), group.Patterns...)
	boundVars := map[string]bool{}
	for _, b := range input {
		for v := range b {
			boundVars[v] = true
		}
	}
	orderPatterns(patterns, boundVars)

	for _, tp := range patterns {
		var next []Binding
		for _, b := range sols {
			matches := matchPattern(d, tp, b)
			next = append(next, matches...)
		}
		sols = next
		if len(sols) == 0 {
			break
		}
	}

	// UNION blocks: each solution is joined with the union of alternatives.
	for _, alts := range group.Unions {
		var next []Binding
		for _, alt := range alts {
			branch, err := evalGroup(d, alt, sols)
			if err != nil {
				return nil, err
			}
			next = append(next, branch...)
		}
		sols = next
	}

	// OPTIONAL blocks: left join.
	for _, opt := range group.Optionals {
		var next []Binding
		for _, b := range sols {
			extended, err := evalGroup(d, opt, []Binding{b})
			if err != nil {
				return nil, err
			}
			if len(extended) == 0 {
				next = append(next, b)
			} else {
				next = append(next, extended...)
			}
		}
		sols = next
	}

	// FILTERs eliminate solutions (errors count as elimination).
	for _, f := range group.Filters {
		var kept []Binding
		for _, b := range sols {
			v, err := f.Eval(b)
			if err != nil {
				continue
			}
			ok, err := v.EffectiveBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, b)
		}
		sols = kept
	}
	return sols, nil
}

func orderPatterns(patterns []TriplePattern, bound map[string]bool) {
	score := func(tp TriplePattern, bound map[string]bool) int {
		s := 0
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if !pt.IsVar() || bound[pt.Var] {
				s++
			}
		}
		return s
	}
	// Greedy selection: repeatedly pick the most-bound remaining pattern,
	// then mark its variables bound.
	b := make(map[string]bool, len(bound))
	for k, v := range bound {
		b[k] = v
	}
	for i := range patterns {
		best, bestScore := i, -1
		for j := i; j < len(patterns); j++ {
			if sc := score(patterns[j], b); sc > bestScore {
				best, bestScore = j, sc
			}
		}
		patterns[i], patterns[best] = patterns[best], patterns[i]
		for _, pt := range []PatternTerm{patterns[i].S, patterns[i].P, patterns[i].O} {
			if pt.IsVar() {
				b[pt.Var] = true
			}
		}
	}
}

func matchPattern(d rdf.Dataset, tp TriplePattern, b Binding) []Binding {
	resolve := func(pt PatternTerm) (rdf.Term, string) {
		if !pt.IsVar() {
			return pt.Term, ""
		}
		if t, ok := b[pt.Var]; ok {
			return t, ""
		}
		return rdf.Term{}, pt.Var
	}
	s, sv := resolve(tp.S)
	p, pv := resolve(tp.P)
	o, ov := resolve(tp.O)

	var out []Binding
	d.ForEachMatch(s, p, o, func(t rdf.Triple) bool {
		nb := b.Clone()
		ok := true
		bindVar := func(name string, val rdf.Term) {
			if name == "" {
				return
			}
			if prev, exists := nb[name]; exists {
				if prev != val {
					ok = false
				}
				return
			}
			nb[name] = val
		}
		bindVar(sv, t.Subject)
		bindVar(pv, t.Predicate)
		bindVar(ov, t.Object)
		if ok {
			out = append(out, nb)
		}
		return true
	})
	return out
}
