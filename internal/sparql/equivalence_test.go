package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"qurator/internal/rdf"
)

// genGraph builds a random graph over a small term universe so that
// random patterns join with reasonable probability.
func genGraph(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	n := 10 + rng.Intn(80)
	ts := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		var obj rdf.Term
		switch rng.Intn(3) {
		case 0:
			obj = rdf.Integer(int64(rng.Intn(15)))
		case 1:
			obj = rdf.IRI(fmt.Sprintf("urn:s%d", rng.Intn(8)))
		default:
			obj = rdf.Literal(fmt.Sprintf("lit%d", rng.Intn(6)))
		}
		ts = append(ts, rdf.T(
			rdf.IRI(fmt.Sprintf("urn:s%d", rng.Intn(8))),
			rdf.IRI(fmt.Sprintf("urn:p%d", rng.Intn(4))),
			obj,
		))
	}
	if _, err := g.AddBatch(ts); err != nil {
		panic(err)
	}
	return g
}

var genVars = []string{"a", "b", "c", "d"}

func genPatternTerm(rng *rand.Rand, pos int) string {
	if rng.Intn(2) == 0 {
		return "?" + genVars[rng.Intn(len(genVars))]
	}
	switch pos {
	case 0:
		return fmt.Sprintf("<urn:s%d>", rng.Intn(8))
	case 1:
		return fmt.Sprintf("<urn:p%d>", rng.Intn(4))
	default:
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%d", rng.Intn(15))
		}
		return fmt.Sprintf("<urn:s%d>", rng.Intn(8))
	}
}

func genTriplePattern(rng *rand.Rand) string {
	return fmt.Sprintf("%s %s %s .",
		genPatternTerm(rng, 0), genPatternTerm(rng, 1), genPatternTerm(rng, 2))
}

func genGroup(rng *rand.Rand, depth int) string {
	var sb strings.Builder
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		sb.WriteString(genTriplePattern(rng))
		sb.WriteString(" ")
	}
	if depth > 0 && rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, "OPTIONAL { %s } ", genGroup(rng, depth-1))
	}
	if depth > 0 && rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, "{ %s } UNION { %s } ", genGroup(rng, depth-1), genGroup(rng, depth-1))
	}
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, "FILTER (?%s > %d) ", genVars[rng.Intn(len(genVars))], rng.Intn(10))
	}
	return sb.String()
}

// genQuery returns a random query string and whether it carries an
// explicit ORDER BY (in which case results are compared as multisets:
// stable-sort tie order on a projected-var subset is not part of the
// contract shared by the two evaluators).
func genQuery(rng *rand.Rand) (query string, explicitOrder bool) {
	var sb strings.Builder
	if rng.Intn(8) == 0 {
		fmt.Fprintf(&sb, "ASK { %s }", genGroup(rng, 2))
		return sb.String(), false
	}
	sb.WriteString("SELECT ")
	if rng.Intn(3) == 0 {
		sb.WriteString("DISTINCT ")
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("*")
	} else {
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			fmt.Fprintf(&sb, "?%s ", genVars[rng.Intn(len(genVars))])
		}
	}
	fmt.Fprintf(&sb, " WHERE { %s }", genGroup(rng, 2))
	if rng.Intn(3) == 0 {
		explicitOrder = true
		fmt.Fprintf(&sb, " ORDER BY ")
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, "DESC(?%s)", genVars[rng.Intn(len(genVars))])
		} else {
			fmt.Fprintf(&sb, "?%s", genVars[rng.Intn(len(genVars))])
		}
	} else {
		// Without explicit ORDER BY both evaluators sort on the full
		// projected row, so LIMIT/OFFSET slices are deterministic and
		// exactly comparable.
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " LIMIT %d", rng.Intn(10))
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, " OFFSET %d", rng.Intn(5))
		}
	}
	return sb.String(), explicitOrder
}

func renderRow(vars []string, b Binding) string {
	var key []byte
	for _, v := range vars {
		key = b[v].AppendKey(key)
		key = append(key, 0)
	}
	return string(key)
}

func renderRows(vars []string, rows []Binding) []string {
	out := make([]string, len(rows))
	for i, b := range rows {
		out[i] = renderRow(vars, b)
	}
	return out
}

// TestEvaluatorEquivalenceProperty runs randomized queries (patterns,
// OPTIONAL, UNION, FILTER, DISTINCT, ORDER/LIMIT/OFFSET) against both the
// materializing reference evaluator and the streaming one on random
// graphs, asserting identical results.
func TestEvaluatorEquivalenceProperty(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := genGraph(rng)
		query, explicitOrder := genQuery(rng)

		want, errB := ExecBaseline(g.Snapshot(), query)
		got, errS := Exec(g, query)
		if (errB == nil) != (errS == nil) {
			t.Fatalf("seed %d: error mismatch baseline=%v streaming=%v\nquery: %s", seed, errB, errS, query)
		}
		if errB != nil {
			continue
		}
		if want.Ok != got.Ok {
			t.Fatalf("seed %d: ASK mismatch baseline=%v streaming=%v\nquery: %s", seed, want.Ok, got.Ok, query)
		}
		if len(want.Bindings) != len(got.Bindings) {
			t.Fatalf("seed %d: row count mismatch baseline=%d streaming=%d\nquery: %s",
				seed, len(want.Bindings), len(got.Bindings), query)
		}
		wantRows := renderRows(want.Vars, want.Bindings)
		gotRows := renderRows(got.Vars, got.Bindings)
		if explicitOrder {
			// Ties under an explicit ORDER BY on a var subset may be
			// broken differently; compare as multisets.
			sort.Strings(wantRows)
			sort.Strings(gotRows)
		}
		for i := range wantRows {
			if wantRows[i] != gotRows[i] {
				t.Fatalf("seed %d: row %d differs\nbaseline:  %v\nstreaming: %v\nquery: %s",
					seed, i, want.Bindings[i], got.Bindings[i], query)
			}
		}
	}
}

// TestEvaluatorEquivalenceOnSnapshotAndGraph checks that Exec over a live
// graph and over an explicit snapshot of it agree.
func TestEvaluatorEquivalenceOnSnapshotAndGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := genGraph(rng)
	query := "SELECT ?a ?b WHERE { ?a <urn:p0> ?b . OPTIONAL { ?a <urn:p1> ?c . } }"
	fromGraph := MustExec(g, query)
	fromSnap := MustExec(g.Snapshot(), query)
	if len(fromGraph.Bindings) != len(fromSnap.Bindings) {
		t.Fatalf("row count: graph=%d snapshot=%d", len(fromGraph.Bindings), len(fromSnap.Bindings))
	}
	for i := range fromGraph.Bindings {
		if renderRow(fromGraph.Vars, fromGraph.Bindings[i]) != renderRow(fromSnap.Vars, fromSnap.Bindings[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, fromGraph.Bindings[i], fromSnap.Bindings[i])
		}
	}
}
