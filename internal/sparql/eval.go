package sparql

import (
	"fmt"
	"sort"

	"qurator/internal/rdf"
)

// Result is the outcome of executing a query.
type Result struct {
	// Vars are the projected variable names, in projection order.
	Vars []string
	// Bindings are the solution rows (SELECT only).
	Bindings []Binding
	// Ok is the ASK answer (ASK only).
	Ok bool
}

// Exec parses and executes a query against the graph.
func Exec(g *rdf.Graph, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Exec(g)
}

// Exec executes the parsed query against the graph.
func (q *Query) Exec(g *rdf.Graph) (*Result, error) {
	sols, err := evalGroup(g, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == FormAsk {
		return &Result{Ok: len(sols) > 0}, nil
	}

	vars := q.Vars
	if len(vars) == 0 {
		vars = collectVars(q.Where)
	}

	// Project.
	projected := make([]Binding, len(sols))
	for i, sol := range sols {
		row := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				row[v] = t
			}
		}
		projected[i] = row
	}

	if q.Distinct {
		projected = distinct(vars, projected)
	}

	if len(q.OrderBy) > 0 {
		sortBindings(projected, q.OrderBy)
	} else {
		// Deterministic default order keyed on projected values, so
		// repeated queries over the same graph return identical rows.
		sortBindings(projected, defaultOrder(vars))
	}

	// OFFSET/LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}

	return &Result{Vars: vars, Bindings: projected}, nil
}

func defaultOrder(vars []string) []OrderKey {
	keys := make([]OrderKey, len(vars))
	for i, v := range vars {
		keys[i] = OrderKey{Var: v}
	}
	return keys
}

func distinct(vars []string, rows []Binding) []Binding {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, row := range rows {
		key := ""
		for _, v := range vars {
			key += row[v].String() + "\x00"
		}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, row)
	}
	return out
}

func sortBindings(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, aok := rows[i][k.Var]
			b, bok := rows[j][k.Var]
			if !aok && !bok {
				continue
			}
			// Unbound sorts first (SPARQL: unbound < everything).
			if !aok {
				return !k.Desc
			}
			if !bok {
				return k.Desc
			}
			c := compareOrderTerms(a, b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// compareOrderTerms orders numerically when both terms are numeric,
// otherwise falls back to the total term order.
func compareOrderTerms(a, b rdf.Term) int {
	if af, ok := a.Float(); ok {
		if bf, ok := b.Float(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return rdf.CompareTerms(a, b)
}

func collectVars(g *GroupPattern) []string {
	seen := map[string]struct{}{}
	var order []string
	add := func(pt PatternTerm) {
		if pt.IsVar() {
			if _, ok := seen[pt.Var]; !ok {
				seen[pt.Var] = struct{}{}
				order = append(order, pt.Var)
			}
		}
	}
	var walk func(g *GroupPattern)
	walk = func(g *GroupPattern) {
		for _, tp := range g.Patterns {
			add(tp.S)
			add(tp.P)
			add(tp.O)
		}
		for _, opt := range g.Optionals {
			walk(opt)
		}
		for _, alts := range g.Unions {
			for _, alt := range alts {
				walk(alt)
			}
		}
	}
	walk(g)
	return order
}

// evalGroup evaluates a group graph pattern, extending each input binding.
func evalGroup(g *rdf.Graph, group *GroupPattern, input []Binding) ([]Binding, error) {
	if group == nil {
		return input, nil
	}
	sols := input

	// Order triple patterns greedily by boundness for join efficiency:
	// patterns with more constants (or already-bound variables) first.
	patterns := append([]TriplePattern(nil), group.Patterns...)
	boundVars := map[string]bool{}
	for _, b := range input {
		for v := range b {
			boundVars[v] = true
		}
	}
	orderPatterns(patterns, boundVars)

	for _, tp := range patterns {
		var next []Binding
		for _, b := range sols {
			matches := matchPattern(g, tp, b)
			next = append(next, matches...)
		}
		sols = next
		if len(sols) == 0 {
			break
		}
	}

	// UNION blocks: each solution is joined with the union of alternatives.
	for _, alts := range group.Unions {
		var next []Binding
		for _, alt := range alts {
			branch, err := evalGroup(g, alt, sols)
			if err != nil {
				return nil, err
			}
			next = append(next, branch...)
		}
		sols = next
	}

	// OPTIONAL blocks: left join.
	for _, opt := range group.Optionals {
		var next []Binding
		for _, b := range sols {
			extended, err := evalGroup(g, opt, []Binding{b})
			if err != nil {
				return nil, err
			}
			if len(extended) == 0 {
				next = append(next, b)
			} else {
				next = append(next, extended...)
			}
		}
		sols = next
	}

	// FILTERs eliminate solutions (errors count as elimination).
	for _, f := range group.Filters {
		var kept []Binding
		for _, b := range sols {
			v, err := f.Eval(b)
			if err != nil {
				continue
			}
			ok, err := v.EffectiveBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, b)
		}
		sols = kept
	}
	return sols, nil
}

func orderPatterns(patterns []TriplePattern, bound map[string]bool) {
	score := func(tp TriplePattern, bound map[string]bool) int {
		s := 0
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if !pt.IsVar() || bound[pt.Var] {
				s++
			}
		}
		return s
	}
	// Greedy selection: repeatedly pick the most-bound remaining pattern,
	// then mark its variables bound.
	b := make(map[string]bool, len(bound))
	for k, v := range bound {
		b[k] = v
	}
	for i := range patterns {
		best, bestScore := i, -1
		for j := i; j < len(patterns); j++ {
			if sc := score(patterns[j], b); sc > bestScore {
				best, bestScore = j, sc
			}
		}
		patterns[i], patterns[best] = patterns[best], patterns[i]
		for _, pt := range []PatternTerm{patterns[i].S, patterns[i].P, patterns[i].O} {
			if pt.IsVar() {
				b[pt.Var] = true
			}
		}
	}
}

func matchPattern(g *rdf.Graph, tp TriplePattern, b Binding) []Binding {
	resolve := func(pt PatternTerm) (rdf.Term, string) {
		if !pt.IsVar() {
			return pt.Term, ""
		}
		if t, ok := b[pt.Var]; ok {
			return t, ""
		}
		return rdf.Term{}, pt.Var
	}
	s, sv := resolve(tp.S)
	p, pv := resolve(tp.P)
	o, ov := resolve(tp.O)

	var out []Binding
	g.ForEachMatch(s, p, o, func(t rdf.Triple) bool {
		nb := b.Clone()
		ok := true
		bindVar := func(name string, val rdf.Term) {
			if name == "" {
				return
			}
			if prev, exists := nb[name]; exists {
				if prev != val {
					ok = false
				}
				return
			}
			nb[name] = val
		}
		bindVar(sv, t.Subject)
		bindVar(pv, t.Predicate)
		bindVar(ov, t.Object)
		if ok {
			out = append(out, nb)
		}
		return true
	})
	return out
}

// MustExec is Exec that panics on error; for statically-known queries.
func MustExec(g *rdf.Graph, query string) *Result {
	r, err := Exec(g, query)
	if err != nil {
		panic(fmt.Sprintf("sparql: %v", err))
	}
	return r
}
