package sparql

import (
	"fmt"
	"sort"

	"qurator/internal/rdf"
)

// Result is the outcome of executing a query.
type Result struct {
	// Vars are the projected variable names, in projection order.
	Vars []string
	// Bindings are the solution rows (SELECT only).
	Bindings []Binding
	// Ok is the ASK answer (ASK only).
	Ok bool
}

// Exec parses and executes a query against the dataset. Passing a live
// *rdf.Graph is safe and cheap: Exec takes an O(1) snapshot first, so
// evaluation is lock-free and never blocks the graph's writers.
func Exec(d rdf.Dataset, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Exec(d)
}

// Exec executes the parsed query against the dataset with the streaming
// evaluator: triple patterns are ordered by estimated cardinality (index
// statistics), then joined by a push pipeline that binds in place and
// backtracks — solutions stream through union/optional/filter stages one
// at a time instead of materializing a []Binding between every stage.
func (q *Query) Exec(d rdf.Dataset) (*Result, error) {
	// Snapshot live graphs so evaluation holds no lock: long queries must
	// not block writers, and nested pattern iteration must not re-enter
	// the graph's RWMutex.
	if g, ok := d.(*rdf.Graph); ok {
		d = g.Snapshot()
	}
	plan := planGroup(d, q.Where, nil)

	if q.Form == FormAsk {
		found := false
		plan.run(d, Binding{}, func(Binding) bool {
			found = true
			return false // first solution answers ASK; stop the scan
		})
		return &Result{Ok: found}, nil
	}

	vars := q.Vars
	if len(vars) == 0 {
		vars = collectVars(q.Where)
	}

	// Project each streamed solution into a fresh row (the pipeline's
	// binding map is reused), deduplicating inline under DISTINCT.
	var rows []Binding
	var seen map[string]struct{}
	var key []byte
	if q.Distinct {
		seen = make(map[string]struct{})
	}
	plan.run(d, Binding{}, func(b Binding) bool {
		row := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := b[v]; ok {
				row[v] = t
			}
		}
		if q.Distinct {
			key = key[:0]
			for _, v := range vars {
				key = row[v].AppendKey(key)
				key = append(key, 0)
			}
			if _, dup := seen[string(key)]; dup {
				return true
			}
			seen[string(key)] = struct{}{}
		}
		rows = append(rows, row)
		return true
	})

	if len(q.OrderBy) > 0 {
		sortBindings(rows, q.OrderBy)
	} else {
		// Deterministic default order keyed on projected values, so
		// repeated queries over the same graph return identical rows.
		sortBindings(rows, defaultOrder(vars))
	}

	// OFFSET/LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}

	return &Result{Vars: vars, Bindings: rows}, nil
}

func defaultOrder(vars []string) []OrderKey {
	keys := make([]OrderKey, len(vars))
	for i, v := range vars {
		keys[i] = OrderKey{Var: v}
	}
	return keys
}

func sortBindings(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, aok := rows[i][k.Var]
			b, bok := rows[j][k.Var]
			if !aok && !bok {
				continue
			}
			// Unbound sorts first (SPARQL: unbound < everything).
			if !aok {
				return !k.Desc
			}
			if !bok {
				return k.Desc
			}
			c := compareOrderTerms(a, b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// compareOrderTerms orders numerically when both terms are numeric,
// otherwise falls back to the total term order.
func compareOrderTerms(a, b rdf.Term) int {
	if af, ok := a.Float(); ok {
		if bf, ok := b.Float(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return rdf.CompareTerms(a, b)
}

func collectVars(g *GroupPattern) []string {
	seen := map[string]struct{}{}
	var order []string
	add := func(pt PatternTerm) {
		if pt.IsVar() {
			if _, ok := seen[pt.Var]; !ok {
				seen[pt.Var] = struct{}{}
				order = append(order, pt.Var)
			}
		}
	}
	var walk func(g *GroupPattern)
	walk = func(g *GroupPattern) {
		for _, tp := range g.Patterns {
			add(tp.S)
			add(tp.P)
			add(tp.O)
		}
		for _, opt := range g.Optionals {
			walk(opt)
		}
		for _, alts := range g.Unions {
			for _, alt := range alts {
				walk(alt)
			}
		}
	}
	walk(g)
	return order
}

// MustExec is Exec that panics on error; for statically-known queries.
func MustExec(d rdf.Dataset, query string) *Result {
	r, err := Exec(d, query)
	if err != nil {
		panic(fmt.Sprintf("sparql: %v", err))
	}
	return r
}
