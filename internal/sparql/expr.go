package sparql

import (
	"fmt"
	"regexp"
	"strings"

	"qurator/internal/rdf"
)

// varExpr references a variable; unbound evaluation is an error (which
// eliminates the solution, per SPARQL semantics).
type varExpr struct{ name string }

func (e varExpr) Eval(b Binding) (Value, error) {
	t, ok := b[e.name]
	if !ok {
		return Value{}, fmt.Errorf("sparql: unbound variable ?%s", e.name)
	}
	return TermVal(t), nil
}

func (e varExpr) String() string { return "?" + e.name }

// constExpr is a constant RDF term.
type constExpr struct{ term rdf.Term }

func (e constExpr) Eval(Binding) (Value, error) { return TermVal(e.term), nil }
func (e constExpr) String() string              { return e.term.String() }

// notExpr is logical negation.
type notExpr struct{ inner Expr }

func (e notExpr) Eval(b Binding) (Value, error) {
	v, err := e.inner.Eval(b)
	if err != nil {
		return Value{}, err
	}
	bv, err := v.EffectiveBool()
	if err != nil {
		return Value{}, err
	}
	return BoolVal(!bv), nil
}

func (e notExpr) String() string { return "!(" + e.inner.String() + ")" }

// logicalExpr is && or ||.
type logicalExpr struct {
	op   string // "&&" or "||"
	l, r Expr
}

func (e logicalExpr) Eval(b Binding) (Value, error) {
	lv, lerr := e.l.Eval(b)
	var lb bool
	if lerr == nil {
		lb, lerr = lv.EffectiveBool()
	}
	// Short-circuit per SPARQL: an error on one side may be masked by the
	// other side's determining value.
	if lerr == nil {
		if e.op == "&&" && !lb {
			return BoolVal(false), nil
		}
		if e.op == "||" && lb {
			return BoolVal(true), nil
		}
	}
	rv, rerr := e.r.Eval(b)
	var rb bool
	if rerr == nil {
		rb, rerr = rv.EffectiveBool()
	}
	if rerr != nil {
		return Value{}, rerr
	}
	if lerr != nil {
		// Left errored: result determined only if right decides.
		if e.op == "&&" && !rb {
			return BoolVal(false), nil
		}
		if e.op == "||" && rb {
			return BoolVal(true), nil
		}
		return Value{}, lerr
	}
	if e.op == "&&" {
		return BoolVal(lb && rb), nil
	}
	return BoolVal(lb || rb), nil
}

func (e logicalExpr) String() string {
	return "(" + e.l.String() + " " + e.op + " " + e.r.String() + ")"
}

// cmpExpr is a comparison: = != < <= > >=.
type cmpExpr struct {
	op   string
	l, r Expr
}

func (e cmpExpr) Eval(b Binding) (Value, error) {
	lv, err := e.l.Eval(b)
	if err != nil {
		return Value{}, err
	}
	rv, err := e.r.Eval(b)
	if err != nil {
		return Value{}, err
	}
	// Numeric comparison when both sides are numeric.
	if lf, ok := lv.Numeric(); ok {
		if rf, ok := rv.Numeric(); ok {
			return BoolVal(cmpFloat(e.op, lf, rf)), nil
		}
	}
	// Fall back to term/string comparison.
	ls, rs := valueLexical(lv), valueLexical(rv)
	switch e.op {
	case "=":
		return BoolVal(valueEqual(lv, rv)), nil
	case "!=":
		return BoolVal(!valueEqual(lv, rv)), nil
	case "<":
		return BoolVal(ls < rs), nil
	case "<=":
		return BoolVal(ls <= rs), nil
	case ">":
		return BoolVal(ls > rs), nil
	case ">=":
		return BoolVal(ls >= rs), nil
	}
	return Value{}, fmt.Errorf("sparql: unknown comparison %q", e.op)
}

func (e cmpExpr) String() string {
	return "(" + e.l.String() + " " + e.op + " " + e.r.String() + ")"
}

func cmpFloat(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func valueLexical(v Value) string {
	switch {
	case v.IsBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case v.IsNum:
		return fmt.Sprintf("%g", v.Num)
	default:
		return v.Term.Value()
	}
}

func valueEqual(a, b Value) bool {
	if af, ok := a.Numeric(); ok {
		if bf, ok := b.Numeric(); ok {
			return af == bf
		}
	}
	if !a.Term.IsZero() && !b.Term.IsZero() {
		return a.Term == b.Term
	}
	return valueLexical(a) == valueLexical(b) && a.IsBool == b.IsBool
}

// arithExpr is + - * /.
type arithExpr struct {
	op   string
	l, r Expr
}

func (e arithExpr) Eval(b Binding) (Value, error) {
	lv, err := e.l.Eval(b)
	if err != nil {
		return Value{}, err
	}
	rv, err := e.r.Eval(b)
	if err != nil {
		return Value{}, err
	}
	lf, lok := lv.Numeric()
	rf, rok := rv.Numeric()
	if !lok || !rok {
		return Value{}, fmt.Errorf("sparql: non-numeric operand to %q", e.op)
	}
	switch e.op {
	case "+":
		return NumVal(lf + rf), nil
	case "-":
		return NumVal(lf - rf), nil
	case "*":
		return NumVal(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("sparql: division by zero")
		}
		return NumVal(lf / rf), nil
	}
	return Value{}, fmt.Errorf("sparql: unknown arithmetic op %q", e.op)
}

func (e arithExpr) String() string {
	return "(" + e.l.String() + " " + e.op + " " + e.r.String() + ")"
}

// boundExpr is BOUND(?x).
type boundExpr struct{ name string }

func (e boundExpr) Eval(b Binding) (Value, error) {
	_, ok := b[e.name]
	return BoolVal(ok), nil
}

func (e boundExpr) String() string { return "BOUND(?" + e.name + ")" }

// strExpr is STR(expr): the lexical form.
type strExpr struct{ inner Expr }

func (e strExpr) Eval(b Binding) (Value, error) {
	v, err := e.inner.Eval(b)
	if err != nil {
		return Value{}, err
	}
	return TermVal(rdf.Literal(valueLexical(v))), nil
}

func (e strExpr) String() string { return "STR(" + e.inner.String() + ")" }

// datatypeExpr is DATATYPE(expr).
type datatypeExpr struct{ inner Expr }

func (e datatypeExpr) Eval(b Binding) (Value, error) {
	v, err := e.inner.Eval(b)
	if err != nil {
		return Value{}, err
	}
	if !v.Term.IsLiteral() {
		return Value{}, fmt.Errorf("sparql: DATATYPE of non-literal")
	}
	return TermVal(rdf.IRI(v.Term.Datatype())), nil
}

func (e datatypeExpr) String() string { return "DATATYPE(" + e.inner.String() + ")" }

// regexExpr is REGEX(str, pattern [, flags]).
type regexExpr struct {
	target, pattern Expr
	flags           string
	compiled        *regexp.Regexp // cached when pattern is constant
}

func newRegexExpr(target, pattern Expr, flags string) (*regexExpr, error) {
	e := &regexExpr{target: target, pattern: pattern, flags: flags}
	if c, ok := pattern.(constExpr); ok {
		re, err := compileRegex(c.term.Value(), flags)
		if err != nil {
			return nil, err
		}
		e.compiled = re
	}
	return e, nil
}

func compileRegex(pattern, flags string) (*regexp.Regexp, error) {
	if strings.Contains(flags, "i") {
		pattern = "(?i)" + pattern
	}
	return regexp.Compile(pattern)
}

func (e *regexExpr) Eval(b Binding) (Value, error) {
	tv, err := e.target.Eval(b)
	if err != nil {
		return Value{}, err
	}
	re := e.compiled
	if re == nil {
		pv, err := e.pattern.Eval(b)
		if err != nil {
			return Value{}, err
		}
		re, err = compileRegex(valueLexical(pv), e.flags)
		if err != nil {
			return Value{}, err
		}
	}
	return BoolVal(re.MatchString(valueLexical(tv))), nil
}

func (e *regexExpr) String() string {
	return "REGEX(" + e.target.String() + ", " + e.pattern.String() + ")"
}

// inExpr is "expr IN (a, b, c)" or "expr NOT IN (...)".
type inExpr struct {
	target  Expr
	items   []Expr
	negated bool
}

func (e inExpr) Eval(b Binding) (Value, error) {
	tv, err := e.target.Eval(b)
	if err != nil {
		return Value{}, err
	}
	for _, item := range e.items {
		iv, err := item.Eval(b)
		if err != nil {
			return Value{}, err
		}
		if valueEqual(tv, iv) {
			return BoolVal(!e.negated), nil
		}
	}
	return BoolVal(e.negated), nil
}

func (e inExpr) String() string {
	items := make([]string, len(e.items))
	for i, it := range e.items {
		items[i] = it.String()
	}
	op := " IN ("
	if e.negated {
		op = " NOT IN ("
	}
	return e.target.String() + op + strings.Join(items, ", ") + ")"
}
