package sparql

import (
	"strings"
	"testing"

	"qurator/internal/rdf"
)

// exprGraph backs expression-focused tests.
func exprGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(rdf.IRI("urn:i1"), rdf.IRI("urn:n"), rdf.Integer(4)))
	g.MustAdd(rdf.T(rdf.IRI("urn:i1"), rdf.IRI("urn:s"), rdf.Literal("alpha")))
	g.MustAdd(rdf.T(rdf.IRI("urn:i2"), rdf.IRI("urn:n"), rdf.Integer(10)))
	g.MustAdd(rdf.T(rdf.IRI("urn:i2"), rdf.IRI("urn:s"), rdf.Literal("beta")))
	g.MustAdd(rdf.T(rdf.IRI("urn:i3"), rdf.IRI("urn:b"), rdf.Boolean(true)))
	return g
}

func rows(t *testing.T, query string) int {
	t.Helper()
	r, err := Exec(exprGraph(), query)
	if err != nil {
		t.Fatalf("Exec(%q): %v", query, err)
	}
	return len(r.Bindings)
}

func TestArithmeticOperators(t *testing.T) {
	cases := []struct {
		filter string
		want   int
	}{
		{"?n - 1 = 3", 1},
		{"?n * 2 = 20", 1},
		{"?n / 2 = 2", 1},
		{"?n + ?n = 8", 1},
		{"-1 + ?n = 3", 1},
		{"?n / 0 = 1", 0}, // division by zero eliminates
		{"?s + 1 = 2", 0}, // non-numeric operand eliminates
	}
	for _, c := range cases {
		q := "SELECT ?x WHERE { ?x <urn:n> ?n . OPTIONAL { ?x <urn:s> ?s . } FILTER (" + c.filter + ") }"
		if got := rows(t, q); got != c.want {
			t.Errorf("FILTER %s: rows = %d, want %d", c.filter, got, c.want)
		}
	}
}

func TestStringComparisonFallback(t *testing.T) {
	cases := []struct {
		filter string
		want   int
	}{
		{`?s = "alpha"`, 1},
		{`?s != "alpha"`, 1},
		{`?s < "b"`, 1},
		{`?s <= "alpha"`, 1},
		{`?s > "alpha"`, 1},
		{`?s >= "beta"`, 1},
	}
	for _, c := range cases {
		q := "SELECT ?x WHERE { ?x <urn:s> ?s . FILTER (" + c.filter + ") }"
		if got := rows(t, q); got != c.want {
			t.Errorf("FILTER %s: rows = %d, want %d", c.filter, got, c.want)
		}
	}
}

func TestBooleanLiteralAndNot(t *testing.T) {
	if got := rows(t, "SELECT ?x WHERE { ?x <urn:b> ?v . FILTER (?v = true) }"); got != 1 {
		t.Errorf("boolean equality rows = %d", got)
	}
	if got := rows(t, "SELECT ?x WHERE { ?x <urn:b> ?v . FILTER (!(?v = false)) }"); got != 1 {
		t.Errorf("negation rows = %d", got)
	}
}

func TestDatatypeFunction(t *testing.T) {
	q := "SELECT ?x WHERE { ?x <urn:n> ?v . FILTER (DATATYPE(?v) = <" + rdf.XSDInteger + ">) }"
	if got := rows(t, q); got != 2 {
		t.Errorf("DATATYPE rows = %d, want 2", got)
	}
	// DATATYPE of a non-literal eliminates.
	q = "SELECT ?x WHERE { ?x <urn:n> ?v . FILTER (DATATYPE(?x) = <" + rdf.XSDInteger + ">) }"
	if got := rows(t, q); got != 0 {
		t.Errorf("DATATYPE(iri) rows = %d, want 0", got)
	}
}

func TestRegexFlagsAndDynamicPattern(t *testing.T) {
	// Case-insensitive flag.
	if got := rows(t, `SELECT ?x WHERE { ?x <urn:s> ?s . FILTER REGEX(?s, "ALPHA", "i") }`); got != 1 {
		t.Errorf("regex /i rows = %d", got)
	}
	// Dynamic (variable) pattern: match a value against itself.
	if got := rows(t, `SELECT ?x WHERE { ?x <urn:s> ?s . FILTER REGEX(?s, STR(?s)) }`); got != 2 {
		t.Errorf("dynamic regex rows = %d", got)
	}
	// Invalid constant pattern is a parse-time error.
	if _, err := Parse(`SELECT ?x WHERE { ?x <urn:s> ?s . FILTER REGEX(?s, "[") }`); err == nil {
		t.Error("invalid regex should fail at parse time")
	}
}

func TestExprStringRendering(t *testing.T) {
	// Every expression node renders to a non-empty, re-parseable string.
	srcs := []string{
		`SELECT ?x WHERE { ?x <urn:n> ?n . FILTER (?n > 1 && ?n < 100 || !BOUND(?z)) }`,
		`SELECT ?x WHERE { ?x <urn:n> ?n . FILTER (?n + 2 * 3 - 1 / 1 >= 0) }`,
		`SELECT ?x WHERE { ?x <urn:s> ?s . FILTER (?s IN ("alpha", "beta")) }`,
		`SELECT ?x WHERE { ?x <urn:s> ?s . FILTER (?s NOT IN ("x")) }`,
		`SELECT ?x WHERE { ?x <urn:s> ?s . FILTER REGEX(STR(?s), "a") }`,
		`SELECT ?x WHERE { ?x <urn:n> ?n . FILTER (DATATYPE(?n) = <urn:t>) }`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		for _, f := range q.Where.Filters {
			s := f.String()
			if s == "" {
				t.Errorf("empty rendering for filter of %q", src)
			}
		}
	}
	// Triple pattern and binding rendering.
	q, _ := Parse(`SELECT ?x WHERE { ?x <urn:p> "v" . }`)
	if got := q.Where.Patterns[0].String(); !strings.Contains(got, "?x") || !strings.Contains(got, "<urn:p>") {
		t.Errorf("pattern rendering = %q", got)
	}
	b := Binding{"x": rdf.IRI("urn:a")}
	if got := b.String(); !strings.Contains(got, "?x=") {
		t.Errorf("binding rendering = %q", got)
	}
}

func TestMustExecPanicsOnBadQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on a bad query")
		}
	}()
	MustExec(exprGraph(), "NOT A QUERY")
}

func TestMustExecOK(t *testing.T) {
	r := MustExec(exprGraph(), "ASK { ?x <urn:n> ?v . }")
	if !r.Ok {
		t.Error("ASK should hold")
	}
}

func TestNumericComparisonAllOps(t *testing.T) {
	for _, c := range []struct {
		filter string
		want   int
	}{
		{"?n = 4", 1}, {"?n != 4", 1}, {"?n < 10", 1},
		{"?n <= 4", 1}, {"?n > 4", 1}, {"?n >= 10", 1},
	} {
		q := "SELECT ?x WHERE { ?x <urn:n> ?n . FILTER (" + c.filter + ") }"
		if got := rows(t, q); got != c.want {
			t.Errorf("FILTER %s: rows = %d, want %d", c.filter, got, c.want)
		}
	}
}

func TestUnboundVariableInFilterEliminates(t *testing.T) {
	if got := rows(t, "SELECT ?x WHERE { ?x <urn:n> ?n . FILTER (?ghost > 1) }"); got != 0 {
		t.Errorf("unbound filter variable should eliminate all rows, got %d", got)
	}
}
