package sparql

import (
	"testing"

	"qurator/internal/rdf"
)

// FuzzParseNeverPanics checks the parser's robustness against arbitrary
// input: it may reject, but must never panic, and accepted queries must
// execute without panicking against a small graph.
func FuzzParseNeverPanics(f *testing.F) {
	seeds := []string{
		"SELECT ?x WHERE { ?x ?p ?o . }",
		prefixes + "SELECT DISTINCT ?v WHERE { ?x q:hitRatio ?v . FILTER (?v > 0.5) } ORDER BY DESC(?v) LIMIT 3",
		"ASK { <urn:a> <urn:b> \"c\" . }",
		"SELECT * WHERE { { ?a ?b ?c . } UNION { ?a ?b ?d . } OPTIONAL { ?a ?e ?f . } }",
		"PREFIX : <urn:x#> SELECT ?x WHERE { ?x :p ?y . FILTER REGEX(STR(?y), \"a.*\", \"i\") }",
		"SELECT ?x WHERE { ?x a ?c . FILTER (?x IN (<urn:a>, <urn:b>) && !BOUND(?z)) }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(rdf.IRI("urn:a"), rdf.IRI("urn:b"), rdf.Literal("c")))
	g.MustAdd(rdf.T(rdf.IRI("urn:a"), rdf.IRI("urn:p"), rdf.Double(0.5)))

	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := q.Exec(g); err != nil {
			t.Fatalf("parsed query failed to execute: %v", err)
		}
	})
}
