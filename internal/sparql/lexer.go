// Package sparql implements the SPARQL subset that the Qurator framework
// issues against its RDF stores: SELECT and ASK queries over basic graph
// patterns with FILTER, OPTIONAL, DISTINCT, ORDER BY and LIMIT/OFFSET, plus
// PREFIX declarations.
//
// The paper (§5) accesses quality-evidence metadata "primarily based on
// (data, evidence type) keys, using queries in the SPARQL language"; this
// package plays the role that an external SPARQL endpoint (3store, Sesame,
// Oracle RDF) plays in the original system, and is deliberately swappable
// behind the annotstore API for the same reason the paper cites.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar      // ?name
	tokIRI      // <...>
	tokPrefixed // pfx:local
	tokLiteral  // "..." (lexical form in text; datatype/lang in aux)
	tokNumber
	tokBoolean
	tokPunct // { } ( ) . , ; * =  != < <= > >= && || ! + - /
)

type token struct {
	kind tokenKind
	text string
	// aux carries the datatype IRI ("^^<...>" resolved later for prefixed)
	// or "@lang" for literals.
	aux string
	pos int
}

func (t token) String() string {
	return fmt.Sprintf("%v(%q)", t.kind, t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "FILTER": true,
	"OPTIONAL": true, "PREFIX": true, "DISTINCT": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"BOUND": true, "REGEX": true, "STR": true, "DATATYPE": true,
	"NOT": true, "IN": true, "A": true, "UNION": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '<':
			if l.looksLikeIRI() {
				if err := l.iri(); err != nil {
					return err
				}
			} else if !l.punct() {
				return fmt.Errorf("sparql: unexpected character %q at offset %d", c, l.pos)
			}
		case c == '"':
			if err := l.literal(); err != nil {
				return err
			}
		case c == '?' || c == '$':
			l.variable()
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			l.number()
		case isNameStart(rune(c)):
			l.word()
		default:
			if ok := l.punct(); !ok {
				return fmt.Errorf("sparql: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
	l.emit(token{kind: tokEOF, pos: l.pos})
	return nil
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

// looksLikeIRI reports whether the '<' at the current position opens an
// IRI (a '>' appears before any whitespace) rather than a comparison
// operator in a FILTER expression.
func (l *lexer) looksLikeIRI() bool {
	for i := l.pos + 1; i < len(l.src); i++ {
		switch l.src[i] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '<':
			return false
		}
	}
	return false
}

func (l *lexer) iri() error {
	start := l.pos
	end := strings.IndexByte(l.src[l.pos:], '>')
	if end < 0 {
		return fmt.Errorf("sparql: unterminated IRI at offset %d", start)
	}
	l.emit(token{kind: tokIRI, text: l.src[l.pos+1 : l.pos+end], pos: start})
	l.pos += end + 1
	return nil
}

func (l *lexer) literal() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return fmt.Errorf("sparql: unterminated literal at offset %d", start)
		}
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\\':
				b.WriteByte(next)
			default:
				return fmt.Errorf("sparql: bad escape \\%c at offset %d", next, l.pos)
			}
			l.pos += 2
			continue
		}
		if c == '"' {
			l.pos++
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	tok := token{kind: tokLiteral, text: b.String(), pos: start}
	// Optional @lang or ^^datatype.
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && (isNamePart(rune(l.src[l.pos])) || l.src[l.pos] == '-') {
			l.pos++
		}
		tok.aux = "@" + l.src[s:l.pos]
	} else if strings.HasPrefix(l.src[l.pos:], "^^") {
		l.pos += 2
		if l.pos < len(l.src) && l.src[l.pos] == '<' {
			end := strings.IndexByte(l.src[l.pos:], '>')
			if end < 0 {
				return fmt.Errorf("sparql: unterminated datatype IRI at offset %d", l.pos)
			}
			tok.aux = "^^" + l.src[l.pos+1:l.pos+end]
			l.pos += end + 1
		} else {
			s := l.pos
			for l.pos < len(l.src) && (isNamePart(rune(l.src[l.pos])) || l.src[l.pos] == ':') {
				l.pos++
			}
			tok.aux = "^^pfx:" + l.src[s:l.pos]
		}
	}
	l.emit(tok)
	return nil
}

func (l *lexer) variable() {
	start := l.pos
	l.pos++ // ? or $
	s := l.pos
	for l.pos < len(l.src) && isNamePart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(token{kind: tokVar, text: l.src[s:l.pos], pos: start})
}

func (l *lexer) number() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		// Don't absorb a trailing "." that terminates a triple pattern:
		// only treat '.' as part of the number when followed by a digit.
		if l.src[l.pos] == '.' {
			if l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
				break
			}
		}
		l.pos++
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) word() {
	start := l.pos
	for l.pos < len(l.src) && (isNamePart(rune(l.src[l.pos])) || l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isNamePart(rune(l.src[l.pos+1]))) {
		l.pos++
	}
	word := l.src[start:l.pos]
	// Prefixed name: word directly followed by ':' local-part.
	if l.pos < len(l.src) && l.src[l.pos] == ':' {
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && (isNamePart(rune(l.src[l.pos])) || l.src[l.pos] == '-') {
			l.pos++
		}
		l.emit(token{kind: tokPrefixed, text: word + ":" + l.src[s:l.pos], pos: start})
		return
	}
	upper := strings.ToUpper(word)
	switch {
	case upper == "TRUE" || upper == "FALSE":
		l.emit(token{kind: tokBoolean, text: strings.ToLower(word), pos: start})
	case keywords[upper]:
		l.emit(token{kind: tokKeyword, text: upper, pos: start})
	default:
		// Bare word — treat as prefixed name with empty prefix is invalid;
		// surface it as a keyword-like token so the parser reports context.
		l.emit(token{kind: tokKeyword, text: upper, pos: start})
	}
}

func (l *lexer) punct() bool {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<=", ">=", "&&", "||":
		l.emit(token{kind: tokPunct, text: two, pos: l.pos})
		l.pos += 2
		return true
	}
	c := l.src[l.pos]
	switch c {
	case '{', '}', '(', ')', '.', ',', ';', '*', '=', '<', '>', '!', '+', '-', '/', ':':
		l.emit(token{kind: tokPunct, text: string(c), pos: l.pos})
		l.pos++
		return true
	}
	return false
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isNamePart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
