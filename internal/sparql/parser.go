package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"qurator/internal/rdf"
)

// Parse parses a SPARQL query in the supported subset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sparql: expected %q at offset %d, got %q", s, t.pos, t.text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.peek(); t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) query() (*Query, error) {
	for p.acceptKeyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	q := &Query{Limit: -1}
	switch {
	case p.acceptKeyword("SELECT"):
		q.Form = FormSelect
		if p.acceptKeyword("DISTINCT") {
			q.Distinct = true
		}
		if p.acceptPunct("*") {
			// SELECT * — project all.
		} else {
			for p.peek().kind == tokVar {
				q.Vars = append(q.Vars, p.next().text)
			}
			if len(q.Vars) == 0 {
				return nil, fmt.Errorf("sparql: SELECT requires * or at least one variable")
			}
		}
	case p.acceptKeyword("ASK"):
		q.Form = FormAsk
	default:
		return nil, fmt.Errorf("sparql: expected SELECT or ASK, got %q", p.peek().text)
	}

	// WHERE is optional before the group.
	p.acceptKeyword("WHERE")
	group, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = group

	if q.Form == FormSelect {
		if p.acceptKeyword("ORDER") {
			if !p.acceptKeyword("BY") {
				return nil, fmt.Errorf("sparql: ORDER must be followed by BY")
			}
			for {
				desc := false
				if p.acceptKeyword("DESC") {
					desc = true
					if err := p.expectPunct("("); err != nil {
						return nil, err
					}
				} else if p.acceptKeyword("ASC") {
					if err := p.expectPunct("("); err != nil {
						return nil, err
					}
				} else if p.peek().kind != tokVar {
					break
				} else {
					q.OrderBy = append(q.OrderBy, OrderKey{Var: p.next().text})
					continue
				}
				v := p.next()
				if v.kind != tokVar {
					return nil, fmt.Errorf("sparql: ORDER BY expects a variable, got %q", v.text)
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v.text, Desc: desc})
			}
			if len(q.OrderBy) == 0 {
				return nil, fmt.Errorf("sparql: empty ORDER BY")
			}
		}
		// LIMIT and OFFSET may appear in either order.
		for {
			switch {
			case p.acceptKeyword("LIMIT"):
				n, err := p.integer()
				if err != nil {
					return nil, err
				}
				q.Limit = n
				continue
			case p.acceptKeyword("OFFSET"):
				n, err := p.integer()
				if err != nil {
					return nil, err
				}
				q.Offset = n
				continue
			}
			break
		}
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sparql: unexpected trailing token %q at offset %d", t.text, t.pos)
	}
	return q, nil
}

func (p *parser) integer() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sparql: expected integer, got %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sparql: bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) prefixDecl() error {
	t := p.next()
	var pfx string
	switch {
	case t.kind == tokPrefixed && strings.HasSuffix(t.text, ":"):
		pfx = strings.TrimSuffix(t.text, ":")
	case t.kind == tokPrefixed:
		// lexer produced "pfx:local" with empty local when declaration is
		// "PREFIX q: <...>": text is "q:".
		parts := strings.SplitN(t.text, ":", 2)
		if parts[1] != "" {
			return fmt.Errorf("sparql: malformed prefix declaration %q", t.text)
		}
		pfx = parts[0]
	case t.kind == tokPunct && t.text == ":":
		pfx = ""
	default:
		return fmt.Errorf("sparql: expected prefix name, got %q", t.text)
	}
	iri := p.next()
	if iri.kind != tokIRI {
		return fmt.Errorf("sparql: expected IRI in PREFIX declaration, got %q", iri.text)
	}
	p.prefixes[pfx] = iri.text
	return nil
}

func (p *parser) resolvePrefixed(name string, pos int) (rdf.Term, error) {
	parts := strings.SplitN(name, ":", 2)
	base, ok := p.prefixes[parts[0]]
	if !ok {
		return rdf.Term{}, fmt.Errorf("sparql: undeclared prefix %q at offset %d", parts[0], pos)
	}
	return rdf.IRI(base + parts[1]), nil
}

func (p *parser) groupPattern() (*GroupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		t := p.peek()
		switch {
		case t.kind == tokPunct && t.text == "}":
			p.pos++
			return g, nil
		case t.kind == tokEOF:
			return nil, fmt.Errorf("sparql: unterminated group pattern")
		case t.kind == tokKeyword && t.text == "FILTER":
			p.pos++
			expr, err := p.filterExpr()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, expr)
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.pos++
			sub, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, sub)
		case t.kind == tokPunct && t.text == "{":
			// UNION alternative groups: { A } UNION { B } ...
			alt, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			alts := []*GroupPattern{alt}
			for p.acceptKeyword("UNION") {
				next, err := p.groupPattern()
				if err != nil {
					return nil, err
				}
				alts = append(alts, next)
			}
			g.Unions = append(g.Unions, alts)
		default:
			tp, err := p.triplePattern()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, tp)
			// '.' separators are optional before '}'.
			p.acceptPunct(".")
		}
	}
}

func (p *parser) triplePattern() (TriplePattern, error) {
	s, err := p.patternTerm(false)
	if err != nil {
		return TriplePattern{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.patternTerm(true)
	if err != nil {
		return TriplePattern{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.patternTerm(false)
	if err != nil {
		return TriplePattern{}, fmt.Errorf("object: %w", err)
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

func (p *parser) patternTerm(isPredicate bool) (PatternTerm, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return PatternTerm{Var: t.text}, nil
	case tokIRI:
		return PatternTerm{Term: rdf.IRI(t.text)}, nil
	case tokPrefixed:
		term, err := p.resolvePrefixed(t.text, t.pos)
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: term}, nil
	case tokKeyword:
		// "a" abbreviates rdf:type in predicate position.
		if isPredicate && t.text == "A" {
			return PatternTerm{Term: rdf.IRI(rdf.RDFType)}, nil
		}
		return PatternTerm{}, fmt.Errorf("sparql: unexpected keyword %q in pattern at offset %d", t.text, t.pos)
	case tokLiteral:
		return PatternTerm{Term: p.literalTerm(t)}, nil
	case tokNumber:
		return PatternTerm{Term: numberTerm(t.text)}, nil
	case tokBoolean:
		return PatternTerm{Term: rdf.TypedLiteral(t.text, rdf.XSDBoolean)}, nil
	default:
		return PatternTerm{}, fmt.Errorf("sparql: unexpected token %q at offset %d", t.text, t.pos)
	}
}

func (p *parser) literalTerm(t token) rdf.Term {
	switch {
	case strings.HasPrefix(t.aux, "@"):
		return rdf.LangLiteral(t.text, t.aux[1:])
	case strings.HasPrefix(t.aux, "^^pfx:"):
		resolved, err := p.resolvePrefixed(strings.TrimPrefix(t.aux, "^^pfx:"), t.pos)
		if err == nil {
			return rdf.TypedLiteral(t.text, resolved.Value())
		}
		return rdf.Literal(t.text)
	case strings.HasPrefix(t.aux, "^^"):
		return rdf.TypedLiteral(t.text, t.aux[2:])
	default:
		return rdf.Literal(t.text)
	}
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		return rdf.TypedLiteral(text, rdf.XSDDouble)
	}
	return rdf.TypedLiteral(text, rdf.XSDInteger)
}

// filterExpr parses "FILTER ( expr )" or "FILTER expr" with a primary.
func (p *parser) filterExpr() (Expr, error) {
	if p.acceptPunct("(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = logicalExpr{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = logicalExpr{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// IN / NOT IN
	if p.acceptKeyword("IN") {
		return p.inList(l, false)
	}
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		save := p.pos
		p.pos++
		if p.acceptKeyword("IN") {
			return p.inList(l, true)
		}
		p.pos = save
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return cmpExpr{op: t.text, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) inList(target Expr, negated bool) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var items []Expr
	for {
		item, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inExpr{target: target, items: items, negated: negated}, nil
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = arithExpr{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = arithExpr{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptPunct("!") {
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return varExpr{name: t.text}, nil
	case tokIRI:
		return constExpr{term: rdf.IRI(t.text)}, nil
	case tokPrefixed:
		term, err := p.resolvePrefixed(t.text, t.pos)
		if err != nil {
			return nil, err
		}
		return constExpr{term: term}, nil
	case tokLiteral:
		return constExpr{term: p.literalTerm(t)}, nil
	case tokNumber:
		return constExpr{term: numberTerm(t.text)}, nil
	case tokBoolean:
		return constExpr{term: rdf.TypedLiteral(t.text, rdf.XSDBoolean)}, nil
	case tokPunct:
		if t.text == "(" {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		switch t.text {
		case "BOUND":
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			v := p.next()
			if v.kind != tokVar {
				return nil, fmt.Errorf("sparql: BOUND expects a variable")
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return boundExpr{name: v.text}, nil
		case "STR":
			inner, err := p.parenArg()
			if err != nil {
				return nil, err
			}
			return strExpr{inner: inner}, nil
		case "DATATYPE":
			inner, err := p.parenArg()
			if err != nil {
				return nil, err
			}
			return datatypeExpr{inner: inner}, nil
		case "REGEX":
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			target, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			pattern, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			flags := ""
			if p.acceptPunct(",") {
				ft := p.next()
				if ft.kind != tokLiteral {
					return nil, fmt.Errorf("sparql: REGEX flags must be a string literal")
				}
				flags = ft.text
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return newRegexExpr(target, pattern, flags)
		}
	}
	return nil, fmt.Errorf("sparql: unexpected token %q in expression at offset %d", t.text, t.pos)
}

func (p *parser) parenArg() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}
