package sparql

import (
	"math"

	"qurator/internal/rdf"
)

// groupPlan is the executable form of a GroupPattern: triple patterns
// reordered by estimated cardinality, with sub-groups planned recursively.
// A plan is built once per Exec against one dataset's statistics and then
// driven as a push pipeline (see run): solutions flow pattern → union →
// optional → filter one at a time, never materializing intermediate
// binding sets.
type groupPlan struct {
	patterns  []TriplePattern
	unions    [][]*groupPlan
	optionals []*groupPlan
	filters   []Expr
}

// planGroup orders the group's triple patterns with a cardinality-aware
// greedy: at each step it picks the remaining pattern with the lowest
// estimated match count given which variables are bound so far. Constants
// use the dataset's exact index cardinalities; bound variables discount
// by the number of distinct terms in that position (uniform-selectivity
// assumption). This replaces boundness-only ordering, which treats a
// bound low-selectivity predicate the same as a bound primary key.
func planGroup(d rdf.Dataset, g *GroupPattern, bound map[string]bool) *groupPlan {
	p := &groupPlan{}
	if g == nil {
		return p
	}
	p.filters = g.Filters

	st := d.Stats()
	remaining := append([]TriplePattern(nil), g.Patterns...)
	b := make(map[string]bool, len(bound))
	for k, v := range bound {
		b[k] = v
	}
	p.patterns = make([]TriplePattern, 0, len(remaining))
	for len(remaining) > 0 {
		best, bestCost := 0, math.Inf(1)
		for j, tp := range remaining {
			if c := estimateCost(d, st, tp, b); c < bestCost {
				best, bestCost = j, c
			}
		}
		tp := remaining[best]
		p.patterns = append(p.patterns, tp)
		remaining = append(remaining[:best], remaining[best+1:]...)
		markVars(tp, b)
	}

	for _, alts := range g.Unions {
		planned := make([]*groupPlan, len(alts))
		for i, alt := range alts {
			planned[i] = planGroup(d, alt, b)
		}
		p.unions = append(p.unions, planned)
		// Variables bound inside any alternative may be bound for later
		// stages; treating them as bound only affects cost estimates.
		for _, alt := range alts {
			markGroupVars(alt, b)
		}
	}
	for _, opt := range g.Optionals {
		p.optionals = append(p.optionals, planGroup(d, opt, b))
	}
	return p
}

// estimateCost predicts how many triples the pattern will match given
// the currently bound variables. Constants are exact (index statistics);
// each bound-variable position divides by the number of distinct terms
// in that position, assuming uniform selectivity.
func estimateCost(d rdf.Dataset, st rdf.DatasetStats, tp TriplePattern, bound map[string]bool) float64 {
	var s, p, o rdf.Term
	if !tp.S.IsVar() {
		s = tp.S.Term
	}
	if !tp.P.IsVar() {
		p = tp.P.Term
	}
	if !tp.O.IsVar() {
		o = tp.O.Term
	}
	card := float64(d.Cardinality(s, p, o))
	if tp.S.IsVar() && bound[tp.S.Var] {
		card /= fmax1(st.Subjects)
	}
	if tp.P.IsVar() && bound[tp.P.Var] {
		card /= fmax1(st.Predicates)
	}
	if tp.O.IsVar() && bound[tp.O.Var] {
		card /= fmax1(st.Objects)
	}
	return card
}

func fmax1(n int) float64 {
	if n < 1 {
		return 1
	}
	return float64(n)
}

func markVars(tp TriplePattern, bound map[string]bool) {
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() {
			bound[pt.Var] = true
		}
	}
}

func markGroupVars(g *GroupPattern, bound map[string]bool) {
	for _, tp := range g.Patterns {
		markVars(tp, bound)
	}
	for _, alts := range g.Unions {
		for _, alt := range alts {
			markGroupVars(alt, bound)
		}
	}
	// Optionals may leave their variables unbound; ignore them for
	// planning purposes.
}

// run drives the plan over one input binding, calling emit for every
// solution. The binding map is shared down the pipeline and restored on
// backtrack, so emit must copy anything it keeps. Returning false from
// emit stops the evaluation (ASK early exit); run propagates the stop.
func (p *groupPlan) run(d rdf.Dataset, b Binding, emit func(Binding) bool) bool {
	return p.scan(d, 0, b, emit)
}

// scan joins pattern i onward by binding each match in place, recursing,
// and unbinding on the way out — no per-match binding clone, no
// intermediate solution slice.
func (p *groupPlan) scan(d rdf.Dataset, i int, b Binding, emit func(Binding) bool) bool {
	if i == len(p.patterns) {
		return p.unionStage(d, 0, b, emit)
	}
	tp := p.patterns[i]
	s, sv := resolvePattern(tp.S, b)
	pr, pv := resolvePattern(tp.P, b)
	o, ov := resolvePattern(tp.O, b)

	cont := true
	d.ForEachMatch(s, pr, o, func(t rdf.Triple) bool {
		ok := true
		// bind records the name if this frame bound it, "" if the value
		// was already pinned (constant, outer binding, or an earlier
		// position of this same pattern — which must then agree).
		bind := func(name string, val rdf.Term) string {
			if name == "" || !ok {
				return ""
			}
			if prev, exists := b[name]; exists {
				if prev != val {
					ok = false
				}
				return ""
			}
			b[name] = val
			return name
		}
		n1 := bind(sv, t.Subject)
		n2 := bind(pv, t.Predicate)
		n3 := bind(ov, t.Object)
		if ok && !p.scan(d, i+1, b, emit) {
			cont = false
		}
		for _, n := range [3]string{n3, n2, n1} {
			if n != "" {
				delete(b, n)
			}
		}
		return cont
	})
	return cont
}

// unionStage feeds the solution through union block u onward: each
// alternative's solutions continue down the pipeline in branch order.
func (p *groupPlan) unionStage(d rdf.Dataset, u int, b Binding, emit func(Binding) bool) bool {
	if u == len(p.unions) {
		return p.optionalStage(d, 0, b, emit)
	}
	for _, alt := range p.unions[u] {
		if !alt.run(d, b, func(b2 Binding) bool {
			return p.unionStage(d, u+1, b2, emit)
		}) {
			return false
		}
	}
	return true
}

// optionalStage left-joins optional block i onward: if the optional
// produces no solutions the input passes through unextended.
func (p *groupPlan) optionalStage(d rdf.Dataset, i int, b Binding, emit func(Binding) bool) bool {
	if i == len(p.optionals) {
		return p.filterStage(b, emit)
	}
	matched := false
	if !p.optionals[i].run(d, b, func(b2 Binding) bool {
		matched = true
		return p.optionalStage(d, i+1, b2, emit)
	}) {
		return false
	}
	if !matched {
		return p.optionalStage(d, i+1, b, emit)
	}
	return true
}

// filterStage applies the group's filters; an erroring or false filter
// drops the solution (evaluation continues).
func (p *groupPlan) filterStage(b Binding, emit func(Binding) bool) bool {
	for _, f := range p.filters {
		v, err := f.Eval(b)
		if err != nil {
			return true
		}
		ok, err := v.EffectiveBool()
		if err != nil || !ok {
			return true
		}
	}
	return emit(b)
}

func resolvePattern(pt PatternTerm, b Binding) (rdf.Term, string) {
	if !pt.IsVar() {
		return pt.Term, ""
	}
	if t, ok := b[pt.Var]; ok {
		return t, ""
	}
	return rdf.Term{}, pt.Var
}
