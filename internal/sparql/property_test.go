package sparql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qurator/internal/rdf"
)

// Property: SELECT * { ?s ?p ?o } returns exactly one row per triple, and
// every row's terms reassemble into a triple present in the graph.
func TestSelectAllMatchesGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			g.MustAdd(rdf.T(
				rdf.IRI(fmt.Sprintf("urn:s%d", rng.Intn(10))),
				rdf.IRI(fmt.Sprintf("urn:p%d", rng.Intn(5))),
				rdf.Integer(int64(rng.Intn(20))),
			))
		}
		res, err := Exec(g, "SELECT * WHERE { ?s ?p ?o . }")
		if err != nil {
			return false
		}
		if len(res.Bindings) != g.Len() {
			return false
		}
		for _, b := range res.Bindings {
			if !g.Has(rdf.T(b["s"], b["p"], b["o"])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: DISTINCT never increases the row count, and LIMIT k caps it.
func TestDistinctAndLimitProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw % 20)
		g := rdf.NewGraph()
		for i := 0; i < 40; i++ {
			g.MustAdd(rdf.T(
				rdf.IRI(fmt.Sprintf("urn:s%d", rng.Intn(8))),
				rdf.IRI("urn:p"),
				rdf.Integer(int64(rng.Intn(4))),
			))
		}
		all, err := Exec(g, "SELECT ?o WHERE { ?s <urn:p> ?o . }")
		if err != nil {
			return false
		}
		distinct, err := Exec(g, "SELECT DISTINCT ?o WHERE { ?s <urn:p> ?o . }")
		if err != nil {
			return false
		}
		if len(distinct.Bindings) > len(all.Bindings) || len(distinct.Bindings) > 4 {
			return false
		}
		limited, err := Exec(g, fmt.Sprintf("SELECT ?o WHERE { ?s <urn:p> ?o . } LIMIT %d", k))
		if err != nil {
			return false
		}
		want := k
		if len(all.Bindings) < k {
			want = len(all.Bindings)
		}
		return len(limited.Bindings) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY ?v yields non-decreasing numeric values, and DESC the
// reverse.
func TestOrderByMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		for i := 0; i < 30; i++ {
			g.MustAdd(rdf.T(
				rdf.IRI(fmt.Sprintf("urn:s%d", i)),
				rdf.IRI("urn:v"),
				rdf.Double(rng.Float64()),
			))
		}
		asc, err := Exec(g, "SELECT ?v WHERE { ?s <urn:v> ?v . } ORDER BY ?v")
		if err != nil {
			return false
		}
		prev := -1.0
		for _, b := range asc.Bindings {
			v, _ := b["v"].Float()
			if v < prev {
				return false
			}
			prev = v
		}
		desc, err := Exec(g, "SELECT ?v WHERE { ?s <urn:v> ?v . } ORDER BY DESC(?v)")
		if err != nil {
			return false
		}
		prev = 2.0
		for _, b := range desc.Bindings {
			v, _ := b["v"].Float()
			if v > prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a FILTER is equivalent to post-filtering the unfiltered rows.
func TestFilterEquivalenceProperty(t *testing.T) {
	f := func(seed int64, cutRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cut := float64(cutRaw) / 255
		g := rdf.NewGraph()
		for i := 0; i < 30; i++ {
			g.MustAdd(rdf.T(
				rdf.IRI(fmt.Sprintf("urn:s%d", i)),
				rdf.IRI("urn:v"),
				rdf.Double(rng.Float64()),
			))
		}
		filtered, err := Exec(g, fmt.Sprintf(
			"SELECT ?s ?v WHERE { ?s <urn:v> ?v . FILTER (?v > %g) }", cut))
		if err != nil {
			return false
		}
		all, err := Exec(g, "SELECT ?s ?v WHERE { ?s <urn:v> ?v . }")
		if err != nil {
			return false
		}
		manual := 0
		for _, b := range all.Bindings {
			if v, _ := b["v"].Float(); v > cut {
				manual++
			}
		}
		return len(filtered.Bindings) == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
