package sparql

import (
	"fmt"
	"testing"

	"qurator/internal/rdf"
)

// evidenceGraph builds a small annotation graph in the shape the Qurator
// annotation repositories use: protein hits typed with rdf:type and
// annotated with HitRatio / MassCoverage evidence values.
func evidenceGraph(t testing.TB) *rdf.Graph {
	g := rdf.NewGraph()
	q := func(local string) rdf.Term { return rdf.IRI("http://qurator.org/iq#" + local) }
	hits := []struct {
		id     string
		hr, mc float64
		class  string
	}{
		{"P30089", 0.9, 0.6, "high"},
		{"P12345", 0.5, 0.4, "mid"},
		{"P67890", 0.2, 0.1, "low"},
		{"P00001", 0.7, 0.55, "high"},
	}
	for _, h := range hits {
		s := rdf.IRI("urn:lsid:uniprot.org:uniprot:" + h.id)
		g.MustAdd(rdf.T(s, rdf.IRI(rdf.RDFType), q("ImprintHitEntry")))
		g.MustAdd(rdf.T(s, q("hitRatio"), rdf.Double(h.hr)))
		g.MustAdd(rdf.T(s, q("massCoverage"), rdf.Double(h.mc)))
		g.MustAdd(rdf.T(s, q("scoreClass"), rdf.Literal(h.class)))
	}
	return g
}

const prefixes = "PREFIX q: <http://qurator.org/iq#>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"

func mustSelect(t *testing.T, g *rdf.Graph, query string) *Result {
	t.Helper()
	r, err := Exec(g, query)
	if err != nil {
		t.Fatalf("Exec(%q): %v", query, err)
	}
	return r
}

func TestSelectAllHits(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`SELECT ?x WHERE { ?x a q:ImprintHitEntry . }`)
	if len(r.Bindings) != 4 {
		t.Fatalf("got %d rows, want 4: %v", len(r.Bindings), r.Bindings)
	}
}

func TestSelectByDataAndEvidenceTypeKey(t *testing.T) {
	// The access pattern from paper §5: lookup by (data, evidence type).
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+
		`SELECT ?v WHERE { <urn:lsid:uniprot.org:uniprot:P30089> q:hitRatio ?v . }`)
	if len(r.Bindings) != 1 {
		t.Fatalf("got %d rows, want 1", len(r.Bindings))
	}
	if f, ok := r.Bindings[0]["v"].Float(); !ok || f != 0.9 {
		t.Errorf("hitRatio = %v", r.Bindings[0]["v"])
	}
}

func TestFilterNumericComparison(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+
		`SELECT ?x WHERE { ?x q:hitRatio ?hr . FILTER (?hr > 0.6) }`)
	if len(r.Bindings) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(r.Bindings), r.Bindings)
	}
}

func TestFilterConjunctionAcrossEvidence(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`
		SELECT ?x WHERE {
			?x q:hitRatio ?hr .
			?x q:massCoverage ?mc .
			FILTER (?hr > 0.4 && ?mc > 0.5)
		}`)
	if len(r.Bindings) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(r.Bindings), r.Bindings)
	}
}

func TestFilterInList(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`
		SELECT ?x WHERE {
			?x q:scoreClass ?c .
			FILTER (?c IN ("high", "mid"))
		}`)
	if len(r.Bindings) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(r.Bindings), r.Bindings)
	}
	r = mustSelect(t, g, prefixes+`
		SELECT ?x WHERE { ?x q:scoreClass ?c . FILTER (?c NOT IN ("high")) }`)
	if len(r.Bindings) != 2 {
		t.Fatalf("NOT IN: got %d rows, want 2", len(r.Bindings))
	}
}

func TestOrderByDescLimitOffset(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`
		SELECT ?x ?hr WHERE { ?x q:hitRatio ?hr . } ORDER BY DESC(?hr) LIMIT 2`)
	if len(r.Bindings) != 2 {
		t.Fatalf("got %d rows, want 2", len(r.Bindings))
	}
	first, _ := r.Bindings[0]["hr"].Float()
	second, _ := r.Bindings[1]["hr"].Float()
	if first != 0.9 || second != 0.7 {
		t.Errorf("order = %v, %v; want 0.9, 0.7", first, second)
	}
	r = mustSelect(t, g, prefixes+`
		SELECT ?hr WHERE { ?x q:hitRatio ?hr . } ORDER BY ?hr OFFSET 1 LIMIT 2`)
	if len(r.Bindings) != 2 {
		t.Fatalf("offset: got %d rows", len(r.Bindings))
	}
	if f, _ := r.Bindings[0]["hr"].Float(); f != 0.5 {
		t.Errorf("offset first = %v, want 0.5", f)
	}
}

func TestDistinct(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`SELECT DISTINCT ?c WHERE { ?x q:scoreClass ?c . }`)
	if len(r.Bindings) != 3 {
		t.Fatalf("distinct classes = %d, want 3: %v", len(r.Bindings), r.Bindings)
	}
}

func TestOptionalLeftJoin(t *testing.T) {
	g := evidenceGraph(t)
	// Remove MC for one protein to exercise the optional.
	g.Remove(rdf.T(rdf.IRI("urn:lsid:uniprot.org:uniprot:P67890"),
		rdf.IRI("http://qurator.org/iq#massCoverage"), rdf.Double(0.1)))
	r := mustSelect(t, g, prefixes+`
		SELECT ?x ?mc WHERE {
			?x q:hitRatio ?hr .
			OPTIONAL { ?x q:massCoverage ?mc . }
		}`)
	if len(r.Bindings) != 4 {
		t.Fatalf("got %d rows, want 4", len(r.Bindings))
	}
	unbound := 0
	for _, b := range r.Bindings {
		if _, ok := b["mc"]; !ok {
			unbound++
		}
	}
	if unbound != 1 {
		t.Errorf("unbound mc rows = %d, want 1", unbound)
	}
	// BOUND filter over the optional.
	r = mustSelect(t, g, prefixes+`
		SELECT ?x WHERE {
			?x q:hitRatio ?hr .
			OPTIONAL { ?x q:massCoverage ?mc . }
			FILTER (!BOUND(?mc))
		}`)
	if len(r.Bindings) != 1 {
		t.Fatalf("!BOUND rows = %d, want 1", len(r.Bindings))
	}
}

func TestUnion(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`
		SELECT ?x WHERE {
			{ ?x q:scoreClass "high" . } UNION { ?x q:scoreClass "low" . }
		}`)
	if len(r.Bindings) != 3 {
		t.Fatalf("union rows = %d, want 3: %v", len(r.Bindings), r.Bindings)
	}
}

func TestAsk(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`ASK { ?x q:scoreClass "high" . }`)
	if !r.Ok {
		t.Error("ASK should be true")
	}
	r = mustSelect(t, g, prefixes+`ASK { ?x q:scoreClass "nonexistent" . }`)
	if r.Ok {
		t.Error("ASK should be false")
	}
}

func TestSelectStar(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`SELECT * WHERE { ?x q:hitRatio ?hr . }`)
	if len(r.Vars) != 2 {
		t.Fatalf("vars = %v, want [x hr]", r.Vars)
	}
	if len(r.Bindings) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Bindings))
	}
}

func TestArithmeticAndRegexAndStr(t *testing.T) {
	g := evidenceGraph(t)
	r := mustSelect(t, g, prefixes+`
		SELECT ?x WHERE {
			?x q:hitRatio ?hr . ?x q:massCoverage ?mc .
			FILTER (?hr + ?mc > 1.2)
		}`)
	if len(r.Bindings) != 2 {
		t.Fatalf("arith rows = %d, want 2", len(r.Bindings))
	}
	r = mustSelect(t, g, prefixes+`
		SELECT ?x WHERE { ?x a q:ImprintHitEntry . FILTER REGEX(STR(?x), "P3.*") }`)
	if len(r.Bindings) != 1 {
		t.Fatalf("regex rows = %d, want 1: %v", len(r.Bindings), r.Bindings)
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(rdf.IRI("urn:a"), rdf.IRI("urn:sameAs"), rdf.IRI("urn:a")))
	g.MustAdd(rdf.T(rdf.IRI("urn:a"), rdf.IRI("urn:sameAs"), rdf.IRI("urn:b")))
	r := mustSelect(t, g, `SELECT ?x WHERE { ?x <urn:sameAs> ?x . }`)
	if len(r.Bindings) != 1 || r.Bindings[0]["x"] != rdf.IRI("urn:a") {
		t.Fatalf("rows = %v, want just urn:a", r.Bindings)
	}
}

func TestDeterministicResultOrder(t *testing.T) {
	g := evidenceGraph(t)
	q := prefixes + `SELECT ?x WHERE { ?x a q:ImprintHitEntry . }`
	first := mustSelect(t, g, q)
	for i := 0; i < 5; i++ {
		again := mustSelect(t, g, q)
		for j := range first.Bindings {
			if first.Bindings[j]["x"] != again.Bindings[j]["x"] {
				t.Fatal("result order is not deterministic")
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT WHERE { ?x ?p ?o . }",
		"SELECT ?x { ?x ?p ?o ", // unterminated
		"SELECT ?x WHERE { ?x q:undeclared ?o . }",              // undeclared prefix
		"FOO ?x WHERE { ?x ?p ?o . }",                           // bad form
		"SELECT ?x WHERE { ?x ?p ?o . } ORDER BY",               // empty order
		"SELECT ?x WHERE { ?x ?p ?o . } LIMIT x",                // bad limit
		"SELECT ?x WHERE { ?x ?p ?o . FILTER (?x IN (1, 2) }",   // paren mismatch
		"SELECT ?x WHERE { ?x ?p ?o . } extra",                  // trailing junk
		prefixes + "SELECT ?x WHERE { FILTER (BOUND(q:x)) ?x }", // BOUND non-var
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
		err  bool
	}{
		{BoolVal(true), true, false},
		{BoolVal(false), false, false},
		{NumVal(1), true, false},
		{NumVal(0), false, false},
		{TermVal(rdf.Literal("")), false, false},
		{TermVal(rdf.Literal("x")), true, false},
		{TermVal(rdf.Boolean(false)), false, false},
		{TermVal(rdf.Integer(0)), false, false},
		{TermVal(rdf.IRI("urn:x")), false, true},
	}
	for i, c := range cases {
		got, err := c.v.EffectiveBool()
		if (err != nil) != c.err {
			t.Errorf("case %d: err = %v, want err=%v", i, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestLogicalErrorMasking(t *testing.T) {
	// SPARQL: false && error = false; true || error = true.
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(rdf.IRI("urn:a"), rdf.IRI("urn:p"), rdf.Integer(1)))
	r := mustSelect(t, g, `
		SELECT ?x WHERE {
			?x <urn:p> ?v .
			OPTIONAL { ?x <urn:q> ?w . }
			FILTER (?v = 1 || ?w > 5)
		}`)
	if len(r.Bindings) != 1 {
		t.Fatalf("error masking: rows = %d, want 1", len(r.Bindings))
	}
}

func TestJoinOrderingLargeGraph(t *testing.T) {
	// A shape that is pathological without selectivity ordering: one very
	// selective pattern and one broad pattern.
	g := rdf.NewGraph()
	for i := 0; i < 500; i++ {
		s := rdf.IRI(fmt.Sprintf("urn:item%d", i))
		g.MustAdd(rdf.T(s, rdf.IRI("urn:kind"), rdf.Literal("thing")))
		g.MustAdd(rdf.T(s, rdf.IRI("urn:score"), rdf.Integer(int64(i))))
	}
	r := mustSelect(t, g, `
		SELECT ?x WHERE {
			?x <urn:kind> "thing" .
			?x <urn:score> 499 .
		}`)
	if len(r.Bindings) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Bindings))
	}
}

func BenchmarkExecKeyLookup(b *testing.B) {
	g := evidenceGraph(b)
	q, err := Parse(prefixes + `SELECT ?v WHERE { <urn:lsid:uniprot.org:uniprot:P30089> q:hitRatio ?v . }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Exec(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecFilterScan(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 1000; i++ {
		s := rdf.IRI(fmt.Sprintf("urn:item%d", i))
		g.MustAdd(rdf.T(s, rdf.IRI("urn:score"), rdf.Double(float64(i)/1000)))
	}
	q, err := Parse(`SELECT ?x WHERE { ?x <urn:score> ?s . FILTER (?s > 0.5) }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Exec(g); err != nil {
			b.Fatal(err)
		}
	}
}
