// Quality-drift detection over streaming windows. The paper's follow-up
// line of work (Monitoring Information Quality within Web Service
// Composition and Execution) argues that quality metrics must be tracked
// as time series and acted on when they drift; this file closes that
// loop for the streaming enactor. Every emitted window contributes one
// observation per tracked metric — the window's accept rate plus the
// mean of each evidence/tag statistic — to an EWMA baseline with a
// two-sided CUSUM on top. When the CUSUM score crosses the alarm
// threshold, the detector fires an Alert: a metric, a counter, and an
// optional hook (quratord uses the hook to auto-tighten the view's
// filter condition via SetFilterCondition, turning the monitor into a
// closed control loop).
package stream

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"

	"qurator/internal/compiler"
	"qurator/internal/telemetry"
)

var (
	driftScore = telemetry.Default.GaugeVec(
		"qurator_stream_drift_score",
		"Current two-sided CUSUM drift score of one stream quality metric, in baseline standard deviations.",
		"view", "metric")
	driftAlerts = telemetry.Default.CounterVec(
		"qurator_stream_drift_alerts_total",
		"Drift alerts fired, by metric and direction of the shift.",
		"view", "metric", "direction")
	driftTightened = telemetry.Default.CounterVec(
		"qurator_stream_drift_tighten_total",
		"Auto-tighten reactions to drift alerts, by outcome.",
		"view", "status")
)

// AcceptRateMetric is the always-tracked drift metric: the fraction of a
// window's decided items that reached at least one action output.
const AcceptRateMetric = "accept-rate"

// driftSeriesLen is how many recent per-window observations each metric
// track retains for the /stream/drift endpoint.
const driftSeriesLen = 128

// DriftConfig parameterises a stream's drift detector.
type DriftConfig struct {
	// Alpha is the EWMA smoothing factor of the baseline mean/variance
	// (default 0.1): small values adapt slowly, keeping a sustained shift
	// visible to the CUSUM before the baseline absorbs it.
	Alpha float64
	// K is the CUSUM slack in baseline standard deviations (default 0.5):
	// deviations below K·σ are treated as noise.
	K float64
	// H is the alarm threshold in baseline standard deviations (default
	// 5): the accumulated CUSUM score crossing H fires an alert.
	H float64
	// MinWindows is the baseline warm-up (default 8): no alerts before
	// this many observations of a metric.
	MinWindows int
	// Metrics restricts which window statistics are tracked (by stats
	// key, i.e. evidence/tag IRI). Empty tracks everything. The accept
	// rate is always tracked.
	Metrics []string
	// Registry, when set, exposes the stream's detector on the registry's
	// /stream/drift handler.
	Registry *DriftRegistry
	// OnAlert, when set, is called synchronously for every alert — the
	// auto-tightening hook.
	OnAlert func(Alert)
}

// withDefaults fills the zero fields.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.Alpha <= 0 {
		c.Alpha = 0.1
	}
	if c.K <= 0 {
		c.K = 0.5
	}
	if c.H <= 0 {
		c.H = 5
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 8
	}
	return c
}

// Alert is one detected quality drift.
type Alert struct {
	View string `json:"view"`
	// Metric is the drifted series: AcceptRateMetric or a stats key.
	Metric string `json:"metric"`
	// Direction is "up" or "down".
	Direction string `json:"direction"`
	// Window is the sequence number of the window that tripped the alarm.
	Window int `json:"window"`
	// Value is the observation that tripped it; Baseline the EWMA mean it
	// deviated from; Score the CUSUM score in baseline σ.
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	Score    float64 `json:"score"`
}

// Detector tracks one stream's quality metrics. Safe for concurrent use
// (Observe runs on the stream's emission goroutine; Snapshot on HTTP
// handlers).
type Detector struct {
	mu     sync.Mutex
	view   string
	cfg    DriftConfig
	only   map[string]bool // nil = track all stats keys
	tracks map[string]*driftTrack
}

type driftTrack struct {
	n          int     // observations
	ewma       float64 // baseline mean
	ewvar      float64 // baseline variance
	cusumHi    float64
	cusumLo    float64
	score      float64
	alerts     int
	last       float64
	lastWindow int
	series     *telemetry.Series
}

// NewDetector builds a drift detector for one stream.
func NewDetector(view string, cfg DriftConfig) *Detector {
	d := &Detector{
		view:   view,
		cfg:    cfg.withDefaults(),
		tracks: make(map[string]*driftTrack),
	}
	if len(cfg.Metrics) > 0 {
		d.only = make(map[string]bool, len(cfg.Metrics))
		for _, m := range cfg.Metrics {
			d.only[m] = true
		}
	}
	return d
}

// Observe folds one emitted window into the metric series: its accept
// rate (when it decided anything) and the mean of every tracked window
// statistic.
func (d *Detector) Observe(res WindowResult) {
	var alerts []Alert
	d.mu.Lock()
	if n := len(res.Decisions); n > 0 {
		accepted := 0
		for _, dec := range res.Decisions {
			if len(dec.Outputs) > 0 {
				accepted++
			}
		}
		if a := d.observe(AcceptRateMetric, float64(accepted)/float64(n), res.Seq); a != nil {
			alerts = append(alerts, *a)
		}
	}
	keys := make([]string, 0, len(res.Stats))
	for k := range res.Stats {
		if d.only == nil || d.only[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys) // deterministic alert order
	for _, k := range keys {
		if a := d.observe(k, res.Stats[k].Mean, res.Seq); a != nil {
			alerts = append(alerts, *a)
		}
	}
	d.mu.Unlock()
	// The hook runs unlocked: it may call back into code that snapshots
	// the detector (or tightens the view's filter).
	if d.cfg.OnAlert != nil {
		for _, a := range alerts {
			d.cfg.OnAlert(a)
		}
	}
}

// observe updates one metric track with an observation; caller holds the
// lock. Returns the alert it tripped, if any.
func (d *Detector) observe(metric string, x float64, window int) *Alert {
	tr := d.tracks[metric]
	if tr == nil {
		tr = &driftTrack{series: telemetry.NewSeries(driftSeriesLen)}
		d.tracks[metric] = tr
	}
	tr.last, tr.lastWindow = x, window
	tr.series.Append(x)
	var alert *Alert
	if tr.n >= d.cfg.MinWindows {
		sd := math.Sqrt(tr.ewvar)
		if sd < 1e-9 {
			sd = 1e-9
		}
		z := (x - tr.ewma) / sd
		tr.cusumHi = math.Max(0, tr.cusumHi+z-d.cfg.K)
		tr.cusumLo = math.Max(0, tr.cusumLo-z-d.cfg.K)
		tr.score = math.Max(tr.cusumHi, tr.cusumLo)
		driftScore.With(d.view, metric).Set(tr.score)
		if tr.score > d.cfg.H {
			dir := "up"
			if tr.cusumLo > tr.cusumHi {
				dir = "down"
			}
			tr.alerts++
			driftAlerts.With(d.view, metric, dir).Inc()
			alert = &Alert{
				View: d.view, Metric: metric, Direction: dir,
				Window: window, Value: x, Baseline: tr.ewma, Score: tr.score,
			}
			// Restart the accumulation so one sustained shift fires once
			// per crossing, not once per window.
			tr.cusumHi, tr.cusumLo, tr.score = 0, 0, 0
		}
	}
	// Update the baseline after scoring: the EWMA slowly absorbs the new
	// level, so a corrected-and-stable metric stops alerting.
	if tr.n == 0 {
		tr.ewma = x
	} else {
		delta := x - tr.ewma
		tr.ewma += d.cfg.Alpha * delta
		tr.ewvar = (1 - d.cfg.Alpha) * (tr.ewvar + d.cfg.Alpha*delta*delta)
	}
	tr.n++
	return alert
}

// TrackSnapshot is the externally-visible state of one metric track.
type TrackSnapshot struct {
	Windows    int       `json:"windows"`
	Baseline   float64   `json:"baseline"`
	StdDev     float64   `json:"stddev"`
	Last       float64   `json:"last"`
	LastWindow int       `json:"lastWindow"`
	Score      float64   `json:"score"`
	Alerts     int       `json:"alerts"`
	Series     []float64 `json:"series,omitempty"`
}

// Snapshot returns every tracked metric's state.
func (d *Detector) Snapshot() map[string]TrackSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]TrackSnapshot, len(d.tracks))
	for name, tr := range d.tracks {
		out[name] = TrackSnapshot{
			Windows:    tr.n,
			Baseline:   tr.ewma,
			StdDev:     math.Sqrt(tr.ewvar),
			Last:       tr.last,
			LastWindow: tr.lastWindow,
			Score:      tr.score,
			Alerts:     tr.alerts,
			Series:     tr.series.Snapshot(),
		}
	}
	return out
}

// Alerts returns the total alerts fired across all metrics.
func (d *Detector) Alerts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, tr := range d.tracks {
		n += tr.alerts
	}
	return n
}

// DriftRegistry collects the drift detectors of the streams a host has
// served, keyed by view, for the GET /stream/drift endpoint. A view
// streaming again replaces its detector (the endpoint always shows the
// most recent stream's state).
type DriftRegistry struct {
	mu        sync.Mutex
	detectors map[string]*Detector
}

// NewDriftRegistry returns an empty registry.
func NewDriftRegistry() *DriftRegistry {
	return &DriftRegistry{detectors: make(map[string]*Detector)}
}

func (r *DriftRegistry) register(view string, d *Detector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.detectors[view] = d
}

// Detector returns the registered detector for a view.
func (r *DriftRegistry) Detector(view string) (*Detector, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.detectors[view]
	return d, ok
}

// Snapshot returns every registered view's metric tracks.
func (r *DriftRegistry) Snapshot() map[string]map[string]TrackSnapshot {
	r.mu.Lock()
	views := make(map[string]*Detector, len(r.detectors))
	for v, d := range r.detectors {
		views[v] = d
	}
	r.mu.Unlock()
	out := make(map[string]map[string]TrackSnapshot, len(views))
	for v, d := range views {
		out[v] = d.Snapshot()
	}
	return out
}

// Handler serves the registry as JSON: GET /stream/drift.
func (r *DriftRegistry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "drift: GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// AutoTighten returns an OnAlert hook that applies condition to the
// named filter action of the compiled view on the FIRST alert — the
// "auto-tighten thresholds when a source degrades" control loop.
// SetFilterCondition serialises against in-flight enactments, so the
// tightened condition takes effect from the next window on. Subsequent
// alerts are no-ops (the condition is already in force).
func AutoTighten(c *compiler.Compiled, action, condition string) func(Alert) {
	var once sync.Once
	return func(a Alert) {
		once.Do(func() {
			status := "ok"
			if err := c.SetFilterCondition(action, condition); err != nil {
				status = "error"
			}
			driftTightened.With(a.View, status).Inc()
		})
	}
}
