package stream_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"qurator/internal/stream"
)

// acceptWindow fabricates one emitted window: n decisions of which k
// reached an output, plus a stats series for the given metric mean.
func acceptWindow(seq, n, k int, statKey string, mean float64) stream.WindowResult {
	res := stream.WindowResult{Seq: seq, Size: n}
	for i := 0; i < n; i++ {
		d := stream.Decision{Item: "urn:item", Window: seq, Outputs: []string{}}
		if i < k {
			d.Outputs = []string{"accept:output"}
		}
		res.Decisions = append(res.Decisions, d)
	}
	if statKey != "" {
		res.Stats = map[string]stream.WindowStats{statKey: {N: n, Mean: mean}}
	}
	return res
}

func TestDriftDetectorAlertsOnAcceptRateShift(t *testing.T) {
	var alerts []stream.Alert
	d := stream.NewDetector("v", stream.DriftConfig{
		OnAlert: func(a stream.Alert) { alerts = append(alerts, a) },
	})
	// Stable baseline: 12 windows at 50% accept rate (past the default
	// 8-window warm-up), then a sustained collapse to 10%.
	seq := 0
	for ; seq < 12; seq++ {
		d.Observe(acceptWindow(seq, 10, 5, "", 0))
	}
	if len(alerts) != 0 {
		t.Fatalf("%d alerts during a stable baseline, want 0", len(alerts))
	}
	shiftAt := seq
	for ; seq < 18 && len(alerts) == 0; seq++ {
		d.Observe(acceptWindow(seq, 10, 1, "", 0))
	}
	if len(alerts) == 0 {
		t.Fatal("no alert within 6 windows of a 50%→10% accept-rate collapse")
	}
	a := alerts[0]
	if a.Metric != stream.AcceptRateMetric || a.Direction != "down" || a.View != "v" {
		t.Fatalf("alert = %+v, want a downward accept-rate alert on view v", a)
	}
	if lag := a.Window - shiftAt; lag > 4 {
		t.Errorf("alert fired %d windows after the shift, want a bounded (≤4) detection lag", lag)
	}
	snap := d.Snapshot()
	tr, ok := snap[stream.AcceptRateMetric]
	if !ok {
		t.Fatal("snapshot lacks the accept-rate track")
	}
	if tr.Alerts != len(alerts) || tr.Windows != seq {
		t.Errorf("track = %+v, want %d alerts over %d windows", tr, len(alerts), seq)
	}
	if len(tr.Series) != seq {
		t.Errorf("series retains %d points, want %d", len(tr.Series), seq)
	}
}

func TestDriftDetectorTracksStatsMetrics(t *testing.T) {
	var alerts []stream.Alert
	d := stream.NewDetector("v", stream.DriftConfig{
		OnAlert: func(a stream.Alert) { alerts = append(alerts, a) },
	})
	key := "urn:q:HitRatio"
	seq := 0
	for ; seq < 12; seq++ {
		d.Observe(acceptWindow(seq, 10, 5, key, 0.8))
	}
	for ; seq < 18 && len(alerts) == 0; seq++ {
		d.Observe(acceptWindow(seq, 10, 5, key, 0.2)) // evidence collapses
	}
	if len(alerts) == 0 {
		t.Fatal("no alert on a collapsed evidence mean")
	}
	if alerts[0].Metric != key || alerts[0].Direction != "down" {
		t.Fatalf("alert = %+v, want a downward %s alert", alerts[0], key)
	}
}

func TestDriftMetricsFilter(t *testing.T) {
	d := stream.NewDetector("v", stream.DriftConfig{Metrics: []string{"urn:q:Tracked"}})
	res := acceptWindow(0, 4, 2, "urn:q:Tracked", 1)
	res.Stats["urn:q:Ignored"] = stream.WindowStats{N: 4, Mean: 9}
	d.Observe(res)
	snap := d.Snapshot()
	if _, ok := snap["urn:q:Tracked"]; !ok {
		t.Error("tracked metric missing from snapshot")
	}
	if _, ok := snap["urn:q:Ignored"]; ok {
		t.Error("filtered-out metric tracked anyway")
	}
	if _, ok := snap[stream.AcceptRateMetric]; !ok {
		t.Error("accept rate must always be tracked")
	}
}

func TestDriftAutoTightenAppliesCondition(t *testing.T) {
	c := compilePaperView(t)
	const action = "filter top k score"
	before := c.Conditions()[action]
	tighten := stream.AutoTighten(c, action, "ScoreClass in q:high")
	tighten(stream.Alert{View: "v", Metric: stream.AcceptRateMetric, Direction: "down"})
	after := c.Conditions()[action]
	if after == before || after != "ScoreClass in q:high" {
		t.Fatalf("condition after alert = %q, want the tightened one (was %q)", after, before)
	}
	// Subsequent alerts are no-ops: the condition is already in force.
	if err := c.SetFilterCondition(action, before); err != nil {
		t.Fatal(err)
	}
	tighten(stream.Alert{View: "v", Metric: stream.AcceptRateMetric, Direction: "down"})
	if got := c.Conditions()[action]; got != before {
		t.Fatalf("second alert re-tightened to %q", got)
	}
}

func TestDriftRegistryHandler(t *testing.T) {
	reg := stream.NewDriftRegistry()
	d := stream.NewDetector("paper", stream.DriftConfig{Registry: reg})
	// Registration happens in Run normally; exercise the handler against
	// a detector observed directly.
	for i := 0; i < 3; i++ {
		d.Observe(acceptWindow(i, 4, 2, "", 0))
	}
	// An unregistered detector must not appear.
	if _, ok := reg.Detector("paper"); ok {
		t.Fatal("detector appeared in the registry without registration")
	}
	// Drive registration through a real stream run instead.
	cfg := stream.Config{Window: 2, Drift: &stream.DriftConfig{Registry: reg}}
	_ = enactItems(t, cfg, []stream.Item{{ID: hit(0)}, {ID: hit(1)}})
	if _, ok := reg.Detector("protein-id-quality"); !ok {
		names := []string{}
		for v := range reg.Snapshot() {
			names = append(names, v)
		}
		t.Fatalf("stream run did not register its detector (have %v)", names)
	}
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/stream/drift", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /stream/drift = %d", rr.Code)
	}
	var body map[string]map[string]stream.TrackSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("drift endpoint body: %v", err)
	}
	if len(body) == 0 {
		t.Fatal("drift endpoint returned no views")
	}
}
