package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/imprint"
	"qurator/internal/ispider"
	"qurator/internal/ops"
	"qurator/internal/qvlang"
	"qurator/internal/stream"
)

// ispiderRun materialises one deterministic ISPIDER experiment: the
// ranked identifications of the paper's 10-spot running example, plus the
// annotator that computes their Imprint evidence.
func ispiderRun(t *testing.T) ([]evidence.Item, ops.Annotator) {
	t.Helper()
	world, err := ispider.BuildWorld(ispider.DefaultWorldParams())
	if err != nil {
		t.Fatal(err)
	}
	pls, err := world.Pedro.PeakLists(world.ExperimentID)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]imprint.Result, len(pls))
	for i, pl := range pls {
		results[i] = world.Engine.Search(pl)
	}
	entries, items := ispider.Identifications(results)
	return items, ispider.NewImprintAnnotator(entries)
}

// TestBatchStreamEquivalence is the subsystem's defining law: enacting a
// stream through a single window equal to the collection size yields
// byte-identical decisions — accept/reject and class assignments — to the
// one-shot batch enactment of the same collection. Collection-scoped QAs
// see the same collection either way, so thresholds, classes and filter
// verdicts coincide exactly.
func TestBatchStreamEquivalence(t *testing.T) {
	items, annotator := ispiderRun(t)
	if len(items) == 0 {
		t.Fatal("ISPIDER world produced no identifications")
	}

	// The §5.1 default condition includes an absolute score threshold
	// (HR_MC > 20) whose scale depends on the lab; for the noisy synthetic
	// world use the distribution-relative high class (as §6.3 does) so
	// both sides have a non-degenerate accept/reject split.
	const relCond = "ScoreClass in q:high"

	// Batch: one Compiled.Run over the full collection.
	batchView := compileViewXML(t, qvlang.PaperViewXML, annotator)
	if err := batchView.SetFilterCondition("filter top k score", relCond); err != nil {
		t.Fatal(err)
	}
	out, err := batchView.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("batch Run: %v", err)
	}
	batch := stream.Decide(items, out, out[compiler.OutputAnnotations], batchView.Plan().Outputs, 0)

	// Stream: an independent compile of the same view, enacted with a
	// single window spanning the whole collection.
	streamView := compileViewXML(t, qvlang.PaperViewXML, annotator)
	if err := streamView.SetFilterCondition("filter top k score", relCond); err != nil {
		t.Fatal(err)
	}
	e, err := stream.New(streamView, stream.Config{Window: len(items), Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	results := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, results) }()
	go func() {
		defer close(in)
		for _, it := range items {
			in <- stream.Item{ID: it}
		}
	}()
	var windows []stream.WindowResult
	for r := range results {
		windows = append(windows, r)
	}
	if err := <-done; err != nil {
		t.Fatalf("stream Run: %v", err)
	}
	if len(windows) != 1 {
		t.Fatalf("got %d windows, want 1 (window == collection)", len(windows))
	}
	streamed := windows[0].Decisions

	batchJSON, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	streamJSON, err := json.Marshal(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batchJSON, streamJSON) {
		t.Errorf("batch and stream decisions diverge:\nbatch:  %s\nstream: %s", batchJSON, streamJSON)
	}

	// Sanity: the view did something — some items accepted, some rejected.
	accepted := 0
	for _, d := range batch {
		if len(d.Outputs) > 0 {
			accepted++
		}
		if len(d.Classes) == 0 {
			t.Errorf("item %s carries no class assignment", d.Item)
		}
	}
	if accepted == 0 || accepted == len(batch) {
		t.Errorf("degenerate filter outcome: %d/%d accepted", accepted, len(batch))
	}
}

// TestStreamCoversBatchUnderWindowing: windowed enactment decides exactly
// the batch item set (no loss, no duplication), even though individual
// verdicts may differ — thresholds are per-window by design.
func TestStreamCoversBatchUnderWindowing(t *testing.T) {
	items, annotator := ispiderRun(t)
	e, err := stream.New(compileViewXML(t, qvlang.PaperViewXML, annotator),
		stream.Config{Window: 7, Slide: 3, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	results := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, results) }()
	go func() {
		defer close(in)
		for _, it := range items {
			in <- stream.Item{ID: it}
		}
	}()
	seen := map[string]int{}
	for r := range results {
		for _, d := range r.Decisions {
			seen[d.Item]++
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(items) {
		t.Fatalf("decided %d distinct items, want %d", len(seen), len(items))
	}
	for item, n := range seen {
		if n != 1 {
			t.Errorf("item %s decided %d times", item, n)
		}
	}
}
