package stream

import (
	"fmt"
	"sort"
	"time"

	"qurator/internal/evidence"
)

// Event-time window kinds, carried on WindowResult.Kind.
const (
	KindTumbling = "tumbling"
	KindSliding  = "sliding"
	KindSession  = "session"
)

// eventWindower implements event-time windowing with low-watermark
// progress tracking and bounded lateness.
//
// Every arriving item must carry the declared event-time evidence key
// (unix milliseconds, or an RFC 3339 string). The low watermark trails
// the maximum event time seen by MaxOutOfOrder; a window fires once the
// watermark passes its end, so items up to MaxOutOfOrder out of order
// are still windowed as if the feed were sorted. With MaxOutOfOrder = 0
// an in-order feed fires each window exactly when the first item past
// its end arrives — the configuration under which event-time tumbling
// windows coincide with count windows (the equivalence law tested in
// the experiment suite).
//
// Decide-once semantics mirror the count windower's: the first window to
// fire containing an item decides it; overlapping sliding windows re-
// enact it purely as context. Fired windows are retained until the
// watermark passes end + AllowedLateness; a late item landing inside a
// retained window re-fires it as a superseding emission (decide set =
// the original decisions, plus the late item if it is new), linked to
// the replaced emission via WindowResult.Supersedes. Later items are
// dropped and counted.
type eventWindower struct {
	cfg  Config
	view string
	seq  int

	maxEvent time.Time
	sawEvent bool

	open     map[int64]*eWindow // duration windows by aligned start (UnixNano)
	sessions []*eWindow         // open session windows
	fired    []*eWindow         // retained fired windows, fire order

	// refs counts how many open/retained windows hold each item; decided
	// marks items some fire has already decided. Entries die when the
	// last window holding the item is released, bounding both maps by the
	// live window state rather than the stream length.
	refs    map[evidence.Item]int
	decided map[evidence.Item]bool
}

// eWindow is one event-time window, open or retained-after-fire.
type eWindow struct {
	kind       string
	start, end time.Time
	m          *evidence.Map
	accs       map[evidence.Key]*evidence.Accumulator

	gen        int        // fire generation (0 until first re-fire)
	lastJob    *windowJob // most recent emitted content
	lastDecide []evidence.Item
}

func newEventWindower(cfg Config, view string) *eventWindower {
	return &eventWindower{
		cfg:     cfg,
		view:    view,
		open:    make(map[int64]*eWindow),
		refs:    make(map[evidence.Item]int),
		decided: make(map[evidence.Item]bool),
	}
}

// wm is the low watermark: no item with an event time before it is
// expected any more (those that do arrive are late data).
func (ew *eventWindower) wm() time.Time {
	return ew.maxEvent.Add(-ew.cfg.MaxOutOfOrder)
}

// eventTimeOf extracts an item's event time from its declared evidence
// value: an integer or float is unix milliseconds, a string is RFC 3339.
func eventTimeOf(v evidence.Value) (time.Time, error) {
	if i, ok := v.AsInt(); ok {
		return time.UnixMilli(i), nil
	}
	if f, ok := v.AsFloat(); ok {
		return time.UnixMilli(int64(f)), nil
	}
	if s := v.AsString(); s != "" {
		if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("not a unix-millisecond or RFC 3339 timestamp: %s", v)
}

func (ew *eventWindower) push(it Item) ([]*windowJob, error) {
	v, ok := it.Evidence[ew.cfg.EventTimeKey]
	if !ok || v.IsNull() {
		return nil, fmt.Errorf("item %s lacks event-time evidence %s", it.ID.Value(), ew.cfg.EventTimeKey.Value())
	}
	t, err := eventTimeOf(v)
	if err != nil {
		return nil, fmt.Errorf("item %s event time: %w", it.ID.Value(), err)
	}
	if !ew.sawEvent || t.After(ew.maxEvent) {
		ew.maxEvent = t
		ew.sawEvent = true
	}
	streamWatermark.With(ew.view).Set(float64(ew.wm().UnixNano()) / 1e9)

	var jobs []*windowJob
	if ew.cfg.SessionGap > 0 {
		ew.sessionAdd(it, t, &jobs)
	} else {
		ew.durationAdd(it, t, &jobs)
	}
	ew.advance(&jobs)
	return jobs, nil
}

// flush fires every still-open window as a partial window, in end order.
func (ew *eventWindower) flush() []*windowJob {
	due := ew.sessions
	for _, win := range ew.open {
		due = append(due, win)
	}
	sortWindows(due)
	var jobs []*windowJob
	for _, win := range due {
		jobs = append(jobs, ew.fire(win, true))
	}
	ew.open = map[int64]*eWindow{}
	ew.sessions = nil
	return jobs
}

// durationAdd routes one item into its tumbling/sliding windows: open
// windows gain it, missing future windows are created, and already-fired
// windows within the lateness bound are superseded. An item no window
// can take any more is dropped and counted.
func (ew *eventWindower) durationAdd(it Item, t time.Time, jobs *[]*windowJob) {
	kind := KindSliding
	if ew.cfg.SlideDuration == ew.cfg.WindowDuration {
		kind = KindTumbling
	}
	routed := false
	for _, start := range ew.startsFor(t) {
		if win := ew.open[start.UnixNano()]; win != nil {
			ew.addToWindow(win, it, t)
			routed = true
			continue
		}
		end := start.Add(ew.cfg.WindowDuration)
		if end.After(ew.wm()) {
			win := &eWindow{
				kind: kind, start: start, end: end,
				m:    evidence.NewMap(),
				accs: make(map[evidence.Key]*evidence.Accumulator),
			}
			ew.open[start.UnixNano()] = win
			ew.addToWindow(win, it, t)
			routed = true
			continue
		}
		// The window is past: it fired already (or would have, had it had
		// items). If it is retained within the lateness bound, the item is
		// late data and supersedes its emission.
		if fw := ew.retainedAt(start); fw != nil && ew.cfg.LatePolicy != LateDrop {
			*jobs = append(*jobs, ew.supersede(fw, it, t))
			routed = true
		}
	}
	if !routed {
		streamLateItems.With(ew.view, "dropped").Inc()
	}
}

// sessionAdd routes one item into session windows: a retained fired
// session containing the event time is superseded; otherwise every open
// session within SessionGap of the item merges with it (or a fresh
// session starts).
func (ew *eventWindower) sessionAdd(it Item, t time.Time, jobs *[]*windowJob) {
	for _, fw := range ew.fired {
		if !t.Before(fw.start) && t.Before(fw.end) {
			if ew.cfg.LatePolicy == LateDrop {
				streamLateItems.With(ew.view, "dropped").Inc()
				return
			}
			*jobs = append(*jobs, ew.supersede(fw, it, t))
			return
		}
	}
	var overlap []*eWindow
	for _, s := range ew.sessions {
		if t.Before(s.end) && t.Add(ew.cfg.SessionGap).After(s.start) {
			overlap = append(overlap, s)
		}
	}
	if len(overlap) == 0 {
		win := &eWindow{
			kind: KindSession, start: t, end: t.Add(ew.cfg.SessionGap),
			m:    evidence.NewMap(),
			accs: make(map[evidence.Key]*evidence.Accumulator),
		}
		ew.sessions = append(ew.sessions, win)
		ew.addToWindow(win, it, t)
		return
	}
	win := ew.mergeSessions(overlap)
	ew.addToWindow(win, it, t)
}

// mergeSessions collapses overlapping open sessions into the earliest
// one, re-deriving its accumulators from the merged content.
func (ew *eventWindower) mergeSessions(wins []*eWindow) *eWindow {
	sortWindows(wins)
	base := wins[0]
	if len(wins) == 1 {
		return base
	}
	gone := make(map[*eWindow]bool, len(wins)-1)
	for _, w := range wins[1:] {
		gone[w] = true
		for _, id := range w.m.Items() {
			if base.m.HasItem(id) {
				ew.refs[id]-- // two copies collapse into one
			}
			base.m.SetRow(id, w.m.Row(id))
		}
		if w.end.After(base.end) {
			base.end = w.end
		}
		if w.start.Before(base.start) {
			base.start = w.start
		}
	}
	keep := ew.sessions[:0]
	for _, s := range ew.sessions {
		if !gone[s] {
			keep = append(keep, s)
		}
	}
	ew.sessions = keep
	base.accs = rebuildAccsFrom(base.m)
	return base
}

// addToWindow inserts or refreshes one item in a window, maintaining the
// per-window Welford accumulators and (for sessions) the bounds.
func (ew *eventWindower) addToWindow(win *eWindow, it Item, t time.Time) {
	fresh := !win.m.HasItem(it.ID)
	if !fresh {
		for k, v := range it.Evidence {
			if v.IsNull() {
				continue
			}
			if old, ok := win.m.Get(it.ID, k).AsFloat(); ok {
				winAcc(win, k).Remove(old)
			}
		}
	}
	win.m.SetRow(it.ID, it.Evidence)
	for k, v := range it.Evidence {
		if f, ok := v.AsFloat(); ok {
			winAcc(win, k).Add(f)
		}
	}
	if fresh {
		ew.refs[it.ID]++
	}
	if win.kind == KindSession {
		if e := t.Add(ew.cfg.SessionGap); e.After(win.end) {
			win.end = e
		}
		if t.Before(win.start) {
			win.start = t
		}
	}
}

// supersede re-fires a retained fired window with a late arrival folded
// in: the whole window re-enacts, the original decisions (plus the late
// item, if new and undecided) re-emit, and the job links back to the
// emission it replaces.
func (ew *eventWindower) supersede(fw *eWindow, it Item, t time.Time) *windowJob {
	streamLateItems.With(ew.view, "superseded").Inc()
	fresh := !fw.m.HasItem(it.ID)
	ew.addToWindow(fw, it, t)
	if fresh && !ew.decided[it.ID] {
		ew.decided[it.ID] = true
		fw.lastDecide = append(fw.lastDecide, it.ID)
	}
	fw.gen++
	j := &windowJob{
		seq:     ew.seq,
		items:   append([]evidence.Item(nil), fw.m.Items()...),
		m:       fw.m.Clone(),
		decide:  append([]evidence.Item(nil), fw.lastDecide...),
		stats:   snapshotAccs(fw.accs),
		firedAt: time.Now(),
		kind:    fw.kind,
		start:   fw.start,
		end:     fw.end,
		gen:     fw.gen,
		late:    true,
		prev:    detach(fw.lastJob),
	}
	ew.seq++
	fw.lastJob = j
	return j
}

// advance fires every open window the watermark has passed and expires
// retained windows past their lateness bound.
func (ew *eventWindower) advance(jobs *[]*windowJob) {
	wm := ew.wm()
	var due []*eWindow
	if ew.cfg.SessionGap > 0 {
		keep := ew.sessions[:0]
		for _, s := range ew.sessions {
			if !s.end.After(wm) {
				due = append(due, s)
			} else {
				keep = append(keep, s)
			}
		}
		ew.sessions = keep
	} else {
		for key, win := range ew.open {
			if !win.end.After(wm) {
				due = append(due, win)
				delete(ew.open, key)
			}
		}
	}
	sortWindows(due)
	for _, win := range due {
		*jobs = append(*jobs, ew.fire(win, false))
	}
	keep := ew.fired[:0]
	for _, fw := range ew.fired {
		if wm.Before(fw.end.Add(ew.cfg.AllowedLateness)) {
			keep = append(keep, fw)
		} else {
			ew.release(fw)
		}
	}
	ew.fired = keep
}

// fire emits one window: the items no earlier fire decided are decided
// here; complete windows are retained for late data when the lateness
// bound and policy allow it.
func (ew *eventWindower) fire(win *eWindow, partial bool) *windowJob {
	items := append([]evidence.Item(nil), win.m.Items()...)
	decide := make([]evidence.Item, 0, len(items))
	for _, id := range items {
		if !ew.decided[id] {
			ew.decided[id] = true
			decide = append(decide, id)
		}
	}
	win.lastDecide = decide
	j := &windowJob{
		seq:     ew.seq,
		items:   items,
		m:       win.m.Clone(),
		decide:  decide,
		partial: partial,
		stats:   snapshotAccs(win.accs),
		firedAt: time.Now(),
		kind:    win.kind,
		start:   win.start,
		end:     win.end,
	}
	ew.seq++
	win.lastJob = j
	if !partial && ew.cfg.AllowedLateness > 0 && ew.cfg.LatePolicy != LateDrop {
		ew.fired = append(ew.fired, win)
	} else {
		ew.release(win)
	}
	return j
}

// release drops a window's hold on its items; the last release of an
// item clears its refs/decided entries.
func (ew *eventWindower) release(win *eWindow) {
	for _, id := range win.m.Items() {
		if ew.refs[id]--; ew.refs[id] <= 0 {
			delete(ew.refs, id)
			delete(ew.decided, id)
		}
	}
}

// retainedAt finds the retained fired duration window starting at start.
func (ew *eventWindower) retainedAt(start time.Time) *eWindow {
	for _, fw := range ew.fired {
		if fw.start.Equal(start) {
			return fw
		}
	}
	return nil
}

// startsFor returns the aligned starts (ascending) of every duration
// window containing event time t: the multiples of SlideDuration in
// (t − WindowDuration, t].
func (ew *eventWindower) startsFor(t time.Time) []time.Time {
	sz := ew.cfg.WindowDuration.Nanoseconds()
	sl := ew.cfg.SlideDuration.Nanoseconds()
	tn := t.UnixNano()
	last := floorDiv(tn, sl) * sl
	var starts []time.Time
	for s := last; s > tn-sz; s -= sl {
		starts = append(starts, time.Unix(0, s))
	}
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}
	return starts
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// sortWindows orders windows by (end, start) — the deterministic fire
// order when one watermark advance closes several.
func sortWindows(wins []*eWindow) {
	sort.Slice(wins, func(i, j int) bool {
		if !wins[i].end.Equal(wins[j].end) {
			return wins[i].end.Before(wins[j].end)
		}
		return wins[i].start.Before(wins[j].start)
	})
}

func winAcc(win *eWindow, k evidence.Key) *evidence.Accumulator {
	a := win.accs[k]
	if a == nil {
		a = &evidence.Accumulator{}
		win.accs[k] = a
	}
	return a
}

// rebuildAccsFrom derives fresh accumulators from a window map.
func rebuildAccsFrom(m *evidence.Map) map[evidence.Key]*evidence.Accumulator {
	accs := make(map[evidence.Key]*evidence.Accumulator)
	for _, id := range m.Items() {
		for k, v := range m.Row(id) {
			if f, ok := v.AsFloat(); ok {
				a := accs[k]
				if a == nil {
					a = &evidence.Accumulator{}
					accs[k] = a
				}
				a.Add(f)
			}
		}
	}
	return accs
}

// snapshotAccs freezes per-window accumulators into job statistics.
func snapshotAccs(accs map[evidence.Key]*evidence.Accumulator) map[string]WindowStats {
	var out map[string]WindowStats
	for k, acc := range accs {
		if acc.N() == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]WindowStats, len(accs))
		}
		lo, hi := acc.Thresholds()
		out[k.Value()] = WindowStats{
			N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(), Lo: lo, Hi: hi,
		}
	}
	return out
}
