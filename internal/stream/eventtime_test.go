package stream_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/stream"
)

// etItem is a synthetic hit stamped with q:ObservedAt event time (unix
// milliseconds).
func etItem(i int, ms int64) stream.Item {
	return stream.Item{
		ID: hit(i),
		Evidence: map[evidence.Key]evidence.Value{
			ontology.ObservedAt: evidence.Int(ms),
		},
	}
}

// enactItems feeds the given items through a fresh enactor in order.
func enactItems(t *testing.T, cfg stream.Config, items []stream.Item) []stream.WindowResult {
	t.Helper()
	results, err := tryEnactItems(t, cfg, items)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return results
}

func tryEnactItems(t *testing.T, cfg stream.Config, items []stream.Item) ([]stream.WindowResult, error) {
	t.Helper()
	e, err := stream.New(compilePaperView(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	go func() {
		defer close(in)
		for _, it := range items {
			in <- it
		}
	}()
	var results []stream.WindowResult
	for r := range out {
		results = append(results, r)
	}
	return results, <-done
}

func eventCfg(cfg stream.Config) stream.Config {
	cfg.EventTimeKey = ontology.ObservedAt
	return cfg
}

func TestEventTumblingWindows(t *testing.T) {
	// Items every 25ms; 100ms tumbling windows on an in-order feed with a
	// zero out-of-order bound: [0,100) holds items 0–3 and fires the
	// moment item 4 (t=100) arrives; [100,200) holds 4–7; 8–9 flush as a
	// partial window.
	var items []stream.Item
	for i := 0; i < 10; i++ {
		items = append(items, etItem(i, int64(i)*25))
	}
	results := enactItems(t, eventCfg(stream.Config{WindowDuration: 100 * time.Millisecond}), items)
	if len(results) != 3 {
		t.Fatalf("got %d windows, want 3", len(results))
	}
	for i, r := range results {
		if r.Kind != stream.KindTumbling {
			t.Errorf("window %d kind = %q, want tumbling", i, r.Kind)
		}
		if r.Start != int64(i)*100 || r.End != int64(i+1)*100 {
			t.Errorf("window %d bounds = [%d, %d), want [%d, %d)", i, r.Start, r.End, i*100, (i+1)*100)
		}
	}
	if results[2].Partial != true {
		t.Error("final window should be the partial flush")
	}
	decided := decidedItems(t, results)
	if len(decided) != 10 {
		t.Fatalf("decided %d items, want 10", len(decided))
	}
	for i, want := range []int{4, 4, 2} {
		if len(results[i].Decisions) != want {
			t.Errorf("window %d decided %d, want %d", i, len(results[i].Decisions), want)
		}
	}
}

func TestEventSlidingWindowsDecideOnce(t *testing.T) {
	// 100ms windows sliding by 50ms: every item (but those in the very
	// first half-window) belongs to two windows, yet is decided exactly
	// once — by the earliest window containing it; the later window
	// re-enacts it as context only.
	var items []stream.Item
	for i := 0; i < 12; i++ {
		items = append(items, etItem(i, int64(i)*25))
	}
	results := enactItems(t, eventCfg(stream.Config{
		WindowDuration: 100 * time.Millisecond,
		SlideDuration:  50 * time.Millisecond,
	}), items)
	decided := decidedItems(t, results) // fails on any double decision
	if len(decided) != 12 {
		t.Fatalf("decided %d items, want 12", len(decided))
	}
	for _, r := range results {
		if r.Kind != stream.KindSliding {
			t.Errorf("window %d kind = %q, want sliding", r.Seq, r.Kind)
		}
		if !r.Partial && r.Size <= len(r.Decisions) && r.Start > 0 {
			t.Errorf("window %d should carry context beyond its %d decisions (size %d)",
				r.Seq, len(r.Decisions), r.Size)
		}
	}
}

func TestEventSessionWindows(t *testing.T) {
	// Two bursts separated by more than the 100ms gap → two sessions.
	items := []stream.Item{
		etItem(0, 0), etItem(1, 30), etItem(2, 60),
		etItem(3, 500), etItem(4, 530),
	}
	results := enactItems(t, eventCfg(stream.Config{SessionGap: 100 * time.Millisecond}), items)
	if len(results) != 2 {
		t.Fatalf("got %d session windows, want 2", len(results))
	}
	first, second := results[0], results[1]
	if first.Kind != stream.KindSession || second.Kind != stream.KindSession {
		t.Fatalf("kinds = %q, %q, want session", first.Kind, second.Kind)
	}
	if len(first.Decisions) != 3 || len(second.Decisions) != 2 {
		t.Fatalf("session sizes = %d, %d, want 3, 2", len(first.Decisions), len(second.Decisions))
	}
	// A session's end extends gap past its last event.
	if first.Start != 0 || first.End != 160 {
		t.Errorf("first session bounds = [%d, %d), want [0, 160)", first.Start, first.End)
	}
	if !second.Partial {
		t.Error("second session should flush as partial (watermark never passed it)")
	}
}

func TestWatermarkHoldsBackFires(t *testing.T) {
	// With a 50ms out-of-order bound, the watermark trails the max event
	// time by 50ms: window [0,100) must not fire at t=120 (wm=70) and
	// must fire at t=160 (wm=110). Out-of-order items within the bound
	// are windowed as if the feed were sorted.
	items := []stream.Item{
		etItem(0, 0), etItem(1, 30),
		etItem(2, 120), // wm = 70: [0,100) still open
		etItem(3, 20),  // out of order, within bound: joins [0,100)
		etItem(4, 160), // wm = 110: [0,100) fires with 0,1,3
	}
	results := enactItems(t, eventCfg(stream.Config{
		WindowDuration: 100 * time.Millisecond,
		MaxOutOfOrder:  50 * time.Millisecond,
	}), items)
	if len(results) != 2 {
		t.Fatalf("got %d windows, want 2 (one fired, one flushed)", len(results))
	}
	fired := results[0]
	if fired.Partial || fired.Start != 0 || fired.End != 100 {
		t.Fatalf("first fired window = %+v, want complete [0, 100)", fired)
	}
	if len(fired.Decisions) != 3 {
		t.Fatalf("window [0,100) decided %d items, want 3 (incl. the out-of-order one)", len(fired.Decisions))
	}
	if len(decidedItems(t, results)) != 5 {
		t.Error("all 5 items must be decided across fire + flush")
	}
}

func TestLateItemSupersedesWindow(t *testing.T) {
	items := []stream.Item{
		etItem(0, 0), etItem(1, 10),
		etItem(2, 150), // fires [0,100) deciding items 0,1
		etItem(3, 50),  // below the watermark: late data for [0,100)
	}
	results := enactItems(t, eventCfg(stream.Config{
		WindowDuration:  100 * time.Millisecond,
		AllowedLateness: time.Second,
	}), items)
	// fire [0,100); superseding re-fire of [0,100); partial flush [100,200).
	if len(results) != 3 {
		t.Fatalf("got %d windows, want 3", len(results))
	}
	orig, re := results[0], results[1]
	if orig.Late || orig.Supersedes != "" {
		t.Fatalf("original emission marked late: %+v", orig)
	}
	if !re.Late {
		t.Fatalf("re-fire not marked late: %+v", re)
	}
	if re.Supersedes == "" {
		t.Fatal("superseding emission lacks the key of the emission it replaces")
	}
	if re.Start != orig.Start || re.End != orig.End {
		t.Errorf("re-fire bounds [%d, %d) differ from original [%d, %d)", re.Start, re.End, orig.Start, orig.End)
	}
	// The re-fire re-emits the original decisions plus the late item.
	if len(re.Decisions) != 3 {
		t.Fatalf("re-fire decided %d items, want 3 (2 original + late)", len(re.Decisions))
	}
	seen := map[string]bool{}
	for _, d := range re.Decisions {
		seen[d.Item] = true
	}
	for _, i := range []int{0, 1, 3} {
		if !seen[hit(i).Value()] {
			t.Errorf("re-fire decisions missing item %d", i)
		}
	}
	// The late item must not be decided again by any later window.
	for _, r := range results[2:] {
		for _, d := range r.Decisions {
			if d.Item == hit(3).Value() {
				t.Errorf("late item decided again in window %d", r.Seq)
			}
		}
	}
}

func TestLateDropPolicy(t *testing.T) {
	items := []stream.Item{
		etItem(0, 0), etItem(1, 10),
		etItem(2, 150), // fires [0,100)
		etItem(3, 50),  // late: dropped under LateDrop
	}
	results := enactItems(t, eventCfg(stream.Config{
		WindowDuration:  100 * time.Millisecond,
		AllowedLateness: time.Second,
		LatePolicy:      stream.LateDrop,
	}), items)
	if len(results) != 2 {
		t.Fatalf("got %d windows, want 2 (no superseding re-fire)", len(results))
	}
	for _, r := range results {
		if r.Late {
			t.Errorf("window %d marked late under the drop policy", r.Seq)
		}
		for _, d := range r.Decisions {
			if d.Item == hit(3).Value() {
				t.Errorf("dropped late item decided in window %d", r.Seq)
			}
		}
	}
}

func TestEventTimeMissingKeyFailsStream(t *testing.T) {
	items := []stream.Item{etItem(0, 0), {ID: hit(1)}}
	_, err := tryEnactItems(t, eventCfg(stream.Config{WindowDuration: 100 * time.Millisecond}), items)
	if err == nil || !strings.Contains(err.Error(), "event-time evidence") {
		t.Fatalf("Run = %v, want the missing-event-time error", err)
	}
}

func TestEventTimeConfigValidation(t *testing.T) {
	c := compilePaperView(t)
	bad := []stream.Config{
		eventCfg(stream.Config{}), // neither window-duration nor session-gap
		eventCfg(stream.Config{WindowDuration: time.Second, SessionGap: time.Second}),
		eventCfg(stream.Config{WindowDuration: time.Second, SlideDuration: 2 * time.Second}),
		eventCfg(stream.Config{WindowDuration: time.Second, MaxOutOfOrder: -time.Second}),
		eventCfg(stream.Config{WindowDuration: time.Second, AllowedLateness: -time.Second}),
	}
	for i, cfg := range bad {
		if _, err := stream.New(c, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	e, err := stream.New(c, eventCfg(stream.Config{WindowDuration: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Config(); got.SlideDuration != time.Second || got.Window != 0 {
		t.Errorf("normalised event-time config = %+v", got)
	}
}

// TestEventCountEquivalenceInOrder pins the windowing equivalence law:
// on an in-order feed with event time = index·10ms, tumbling event-time
// windows of 40ms with a zero out-of-order bound produce the same window
// sequence — same contents, same seq, same decisions with the same
// outputs and classes — as count windows of 4 items. (The count window
// fires on arrival of its 4th item, the event-time window on arrival of
// the first item past its end; the decided content is identical.)
func TestEventCountEquivalenceInOrder(t *testing.T) {
	const n = 40
	var items []stream.Item
	for i := 0; i < n; i++ {
		items = append(items, etItem(i, int64(i)*10))
	}
	count := enactItems(t, stream.Config{Window: 4}, items)
	event := enactItems(t, eventCfg(stream.Config{WindowDuration: 40 * time.Millisecond}), items)
	if len(count) != len(event) {
		t.Fatalf("window counts differ: count %d, event %d", len(count), len(event))
	}
	for i := range count {
		cj, _ := json.Marshal(count[i].Decisions)
		ej, _ := json.Marshal(event[i].Decisions)
		if string(cj) != string(ej) {
			t.Errorf("window %d decisions differ:\ncount: %s\nevent: %s", i, cj, ej)
		}
		if count[i].Size != event[i].Size {
			t.Errorf("window %d sizes differ: %d vs %d", i, count[i].Size, event[i].Size)
		}
	}
}
