package stream_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qa"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
)

func hit(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:hit:%d", i))
}

func hitIndex(it evidence.Item) int {
	s := it.Value()
	n, err := strconv.Atoi(s[strings.LastIndex(s, ":")+1:])
	if err != nil {
		panic(err)
	}
	return n
}

// identityAnnotator derives evidence from the item identity alone, so the
// same item gets the same evidence regardless of which window (or which
// run) it arrives in — the determinism the batch/stream comparison rests
// on. Even-indexed hits are strong, odd weak.
func identityAnnotator() ops.Annotator {
	return ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types: []rdf.Term{
			ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount,
		},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, it := range items {
				i := hitIndex(it)
				hr, mc := 0.9, 0.8
				if i%2 == 1 {
					hr, mc = 0.15, 0.1
				}
				puts := []annotstore.Annotation{
					{Item: it, Type: ontology.HitRatio, Value: evidence.Float(hr)},
					{Item: it, Type: ontology.Coverage, Value: evidence.Float(mc)},
					{Item: it, Type: ontology.Masses, Value: evidence.Int(int64(10 + i%7))},
					{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(8)},
				}
				for _, a := range puts {
					a.Source = ontology.ImprintOutputAnnotation
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// compileStack assembles the framework plumbing for one compiled view:
// deployed services, bindings, repositories — mirroring what the root
// Framework does, without importing it (the stream package must stay
// importable from the root package).
func compileStack(t testing.TB, annotator ops.Annotator) *compiler.Compiler {
	t.Helper()
	model := ontology.NewIQModel()
	repos := annotstore.NewRegistry()
	local := services.NewRegistry()
	local.Add(&services.AnnotatorService{
		ServiceName:  "ImprintOutputAnnotator",
		Annotator:    annotator,
		Repositories: repos,
	})
	local.Add(&services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
	})
	local.Add(&services.AssertionService{
		ServiceName: "HR_score",
		QA:          qa.NewHRScore(qvlang.TagKeyFor("HR")),
	})
	local.Add(&services.AssertionService{
		ServiceName: "PIScoreClassifier",
		QA:          qa.NewPIScoreClassifier(),
	})
	bindings := binding.NewRegistry(model)
	bindings.MustBind(binding.Binding{Concept: ontology.ImprintOutputAnnotation, Kind: binding.ServiceResource, Locator: "local:ImprintOutputAnnotator"})
	bindings.MustBind(binding.Binding{Concept: ontology.UniversalPIScore2, Kind: binding.ServiceResource, Locator: "local:HR_MC_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.HRScoreAssertion, Kind: binding.ServiceResource, Locator: "local:HR_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.PIScoreClassifier, Kind: binding.ServiceResource, Locator: "local:PIScoreClassifier"})
	return &compiler.Compiler{
		Bindings:     bindings,
		Resolver:     &binding.Resolver{Local: local},
		Repositories: repos,
	}
}

// compilePaperView compiles the §5.1 view over the identity annotator.
func compilePaperView(t testing.TB) *compiler.Compiled {
	t.Helper()
	return compileViewXML(t, qvlang.PaperViewXML, identityAnnotator())
}

func compileViewXML(t testing.TB, xml string, annotator ops.Annotator) *compiler.Compiled {
	t.Helper()
	v, err := qvlang.Parse([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	c, err := compileStack(t, annotator).Compile(r)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}
