package stream

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"qurator/internal/compiler"
	"qurator/internal/telemetry"
)

// handlerOptions collects the host-side (non-query) configuration of the
// streaming endpoint.
type handlerOptions struct {
	journal WindowJournal
}

// HandlerOption configures Handler beyond what the request query can ask
// for.
type HandlerOption func(*handlerOptions)

// WithJournal attaches a window-emission journal to every stream served
// by the handler — the cluster layer's exactly-once hook.
func WithJournal(j WindowJournal) HandlerOption {
	return func(o *handlerOptions) { o.journal = j }
}

// CompileFunc produces a freshly-compiled quality view for one streaming
// request. Each request gets its own Compiled so concurrent streams never
// share mutable workflow state; the host (quratord, or a test) decides
// how the view is obtained — typically by compiling the request body's
// named view against its deployed framework.
type CompileFunc func(view string) (*compiler.Compiled, error)

// Handler serves POST /stream/enact: the request body is an NDJSON
// sequence of items (see DecodeItem), the response is an NDJSON sequence
// of decisions and window summaries, flushed window-by-window — the first
// decisions arrive while the request body is still being produced.
//
// Query parameters:
//
//	view        name of the quality view to enact (required unless views=)
//	views       comma-separated view names to enact as ONE merged plan:
//	            shared prefixes run once per window, each view's
//	            decisions arrive as its own window records (the "view"
//	            field tells them apart)
//	window      window size (default 64)
//	slide       slide width (default = window, i.e. tumbling)
//	parallelism worker-pool degree (default 1)
//	timeout     per-processor timeout, a Go duration (optional)
//	partial     "drop" suppresses the final short window
//	on-error    "skip" reports failed windows and keeps streaming
//	            (default: the first failed window ends the stream)
func Handler(compile CompileFunc, opts ...HandlerOption) http.Handler {
	var ho handlerOptions
	for _, o := range opts {
		o(&ho)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "stream: POST an NDJSON item stream", http.StatusMethodNotAllowed)
			return
		}
		cfg, views, err := configFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg.Journal = ho.journal
		view := strings.Join(views, ",")
		e, err := newEnactor(compile, views, cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}

		// The endpoint reads the request body and writes the response
		// concurrently — without full duplex the server would block the
		// first header write until the body is drained, deadlocking
		// against a paused producer.
		rc := http.NewResponseController(w)
		if err := rc.EnableFullDuplex(); err != nil {
			http.Error(w, "stream: connection does not support full-duplex streaming",
				http.StatusInternalServerError)
			return
		}
		// Join the caller's trace when a traceparent arrived (a forwarding
		// peer, or a client that wants to correlate); mint a fresh trace
		// otherwise — the enactment endpoint is where traces are born.
		ctx, _ := telemetry.Extract(r.Context(), r.Header)
		ctx, span := telemetry.StartSpan(ctx, "http:/stream/enact")
		span.SetAttr("view", view)
		defer span.End()

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Accel-Buffering", "no") // proxies: don't buffer
		w.Header().Set(telemetry.TraceIDHeader, span.TraceID)
		flush := func() { _ = rc.Flush() }
		in := make(chan Item, cfg.Parallelism)
		results := make(chan WindowResult, cfg.Parallelism)

		readErr := make(chan error, 1)
		go func() { readErr <- ReadItems(r.Body, in) }()

		runErr := make(chan error, 1)
		go func() { runErr <- e.Run(ctx, in, results) }()

		writeFailed := WriteResults(w, results, flush) != nil
		enactErr := <-runErr // Run closed results, so it has returned
		// If the pipeline stopped early its ingest stage no longer drains
		// in; unblock the body reader so it can finish and report.
		go func() {
			for range in {
			}
		}()
		readError := <-readErr
		// Surface the first error as a trailing NDJSON error record —
		// headers are long gone.
		firstErr := enactErr
		if firstErr == nil {
			firstErr = readError
		}
		if firstErr != nil && !writeFailed {
			fmt.Fprintf(w, "{\"error\":%q}\n", firstErr.Error())
			flush()
		}
	})
}

// newEnactor builds the request's enactor: a plain single-view stream,
// or — for ?views=a,b,c — a merged multi-view stream whose shared
// prefixes enact once per window.
func newEnactor(compile CompileFunc, views []string, cfg Config) (*Enactor, error) {
	if len(views) == 1 {
		compiled, err := compile(views[0])
		if err != nil {
			return nil, fmt.Errorf("stream: compile view %q: %w", views[0], err)
		}
		return New(compiled, cfg)
	}
	compiledSet := make([]*compiler.Compiled, 0, len(views))
	for _, v := range views {
		c, err := compile(v)
		if err != nil {
			return nil, fmt.Errorf("stream: compile view %q: %w", v, err)
		}
		compiledSet = append(compiledSet, c)
	}
	mv, err := compiler.MergeViews(compiledSet...)
	if err != nil {
		return nil, fmt.Errorf("stream: merge views: %w", err)
	}
	return NewMulti(mv, cfg)
}

func configFromQuery(r *http.Request) (Config, []string, error) {
	q := r.URL.Query()
	var views []string
	for _, v := range strings.Split(q.Get("views"), ",") {
		if v = strings.TrimSpace(v); v != "" {
			views = append(views, v)
		}
	}
	if len(views) == 0 {
		if view := q.Get("view"); view != "" {
			views = []string{view}
		}
	}
	if len(views) == 0 {
		return Config{}, nil, fmt.Errorf("stream: missing ?view= (or ?views=a,b,c) parameter")
	}
	cfg := Config{Window: 64, Parallelism: 1}
	var err error
	if s := q.Get("window"); s != "" {
		if cfg.Window, err = strconv.Atoi(s); err != nil {
			return Config{}, nil, fmt.Errorf("stream: bad window %q", s)
		}
	}
	if s := q.Get("slide"); s != "" {
		if cfg.Slide, err = strconv.Atoi(s); err != nil {
			return Config{}, nil, fmt.Errorf("stream: bad slide %q", s)
		}
	}
	if s := q.Get("parallelism"); s != "" {
		if cfg.Parallelism, err = strconv.Atoi(s); err != nil {
			return Config{}, nil, fmt.Errorf("stream: bad parallelism %q", s)
		}
	}
	if s := q.Get("timeout"); s != "" {
		if cfg.ProcessorTimeout, err = time.ParseDuration(s); err != nil {
			return Config{}, nil, fmt.Errorf("stream: bad timeout %q", s)
		}
	}
	cfg.DropPartial = q.Get("partial") == "drop"
	cfg.SkipFailedWindows = q.Get("on-error") == "skip"
	return cfg, views, nil
}
