package stream

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qvlang"
	"qurator/internal/telemetry"
)

// handlerOptions collects the host-side (non-query) configuration of the
// streaming endpoint.
type handlerOptions struct {
	journal       WindowJournal
	drift         *DriftConfig
	tightenAction string
	tightenCond   string
}

// HandlerOption configures Handler beyond what the request query can ask
// for.
type HandlerOption func(*handlerOptions)

// WithJournal attaches a window-emission journal to every stream served
// by the handler — the cluster layer's exactly-once hook.
func WithJournal(j WindowJournal) HandlerOption {
	return func(o *handlerOptions) { o.journal = j }
}

// WithDrift runs a quality-drift detector over every stream served by
// the handler. Point cfg.Registry at the registry backing the host's
// GET /stream/drift endpoint to make detector state inspectable.
func WithDrift(cfg DriftConfig) HandlerOption {
	return func(o *handlerOptions) { o.drift = &cfg }
}

// WithAutoTighten arms the drift detector's control loop: the first
// drift alert of a stream applies condition to the named filter action
// of the stream's view (single-view streams only — a merged multi-view
// plan has no one view to tighten). Requires WithDrift.
func WithAutoTighten(action, condition string) HandlerOption {
	return func(o *handlerOptions) {
		o.tightenAction, o.tightenCond = action, condition
	}
}

// CompileFunc produces a freshly-compiled quality view for one streaming
// request. Each request gets its own Compiled so concurrent streams never
// share mutable workflow state; the host (quratord, or a test) decides
// how the view is obtained — typically by compiling the request body's
// named view against its deployed framework.
type CompileFunc func(view string) (*compiler.Compiled, error)

// Handler serves POST /stream/enact: the request body is an NDJSON
// sequence of items (see DecodeItem), the response is an NDJSON sequence
// of decisions and window summaries, flushed window-by-window — the first
// decisions arrive while the request body is still being produced.
//
// Query parameters:
//
//	view        name of the quality view to enact (required unless views=)
//	views       comma-separated view names to enact as ONE merged plan:
//	            shared prefixes run once per window, each view's
//	            decisions arrive as its own window records (the "view"
//	            field tells them apart)
//	window      window size (default 64)
//	slide       slide width (default = window, i.e. tumbling)
//	parallelism worker-pool degree (default 1)
//	timeout     per-processor timeout, a Go duration (optional)
//	partial     "drop" suppresses the final short window
//	on-error    "skip" reports failed windows and keeps streaming
//	            (default: the first failed window ends the stream)
//
// Event-time parameters (see Config; durations use Go syntax):
//
//	eventtime        evidence key carrying each item's event time
//	                 (QName or IRI, e.g. q:ObservedAt) — selects
//	                 event-time windowing
//	window-duration  event-time window width
//	slide-duration   event-time slide (default = window-duration)
//	session-gap      session-window gap (instead of window-duration)
//	max-out-of-order watermark lag bound (default 0: in-order feed)
//	allowed-lateness how long fired windows accept late re-emissions
//	late             late-data policy: "supersede" (default) or "drop"
//
// A view's <streaming> declaration supplies defaults for all windowing
// parameters; query parameters win.
func Handler(compile CompileFunc, opts ...HandlerOption) http.Handler {
	var ho handlerOptions
	for _, o := range opts {
		o(&ho)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "stream: POST an NDJSON item stream", http.StatusMethodNotAllowed)
			return
		}
		cfg, views, explicit, err := configFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg.Journal = ho.journal
		view := strings.Join(views, ",")
		e, err := newEnactor(compile, views, cfg, explicit, &ho)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}

		// The endpoint reads the request body and writes the response
		// concurrently — without full duplex the server would block the
		// first header write until the body is drained, deadlocking
		// against a paused producer.
		rc := http.NewResponseController(w)
		if err := rc.EnableFullDuplex(); err != nil {
			http.Error(w, "stream: connection does not support full-duplex streaming",
				http.StatusInternalServerError)
			return
		}
		// Join the caller's trace when a traceparent arrived (a forwarding
		// peer, or a client that wants to correlate); mint a fresh trace
		// otherwise — the enactment endpoint is where traces are born.
		ctx, _ := telemetry.Extract(r.Context(), r.Header)
		ctx, span := telemetry.StartSpan(ctx, "http:/stream/enact")
		span.SetAttr("view", view)
		defer span.End()

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Accel-Buffering", "no") // proxies: don't buffer
		w.Header().Set(telemetry.TraceIDHeader, span.TraceID)
		flush := func() { _ = rc.Flush() }
		in := make(chan Item, cfg.Parallelism)
		results := make(chan WindowResult, cfg.Parallelism)

		readErr := make(chan error, 1)
		go func() { readErr <- ReadItems(r.Body, in) }()

		runErr := make(chan error, 1)
		go func() { runErr <- e.Run(ctx, in, results) }()

		writeFailed := WriteResults(w, results, flush) != nil
		enactErr := <-runErr // Run closed results, so it has returned
		// If the pipeline stopped early its ingest stage no longer drains
		// in; unblock the body reader so it can finish and report.
		go func() {
			for range in {
			}
		}()
		readError := <-readErr
		// Surface the first error as a trailing NDJSON error record —
		// headers are long gone.
		firstErr := enactErr
		if firstErr == nil {
			firstErr = readError
		}
		if firstErr != nil && !writeFailed {
			fmt.Fprintf(w, "{\"error\":%q}\n", firstErr.Error())
			flush()
		}
	})
}

// newEnactor builds the request's enactor: a plain single-view stream,
// or — for ?views=a,b,c — a merged multi-view stream whose shared
// prefixes enact once per window. The first view's <streaming>
// declaration supplies windowing defaults the query left unset, and the
// host's drift options are armed per request.
func newEnactor(compile CompileFunc, views []string, cfg Config, explicit map[string]bool, ho *handlerOptions) (*Enactor, error) {
	compiledSet := make([]*compiler.Compiled, 0, len(views))
	for _, v := range views {
		c, err := compile(v)
		if err != nil {
			return nil, fmt.Errorf("stream: compile view %q: %w", v, err)
		}
		compiledSet = append(compiledSet, c)
	}
	if r := compiledSet[0].Resolved; r != nil {
		cfg = applyStreamingDecl(cfg, r.Streaming, explicit)
	}
	if ho.drift != nil {
		d := *ho.drift // per-request copy: OnAlert binds this stream's view
		if ho.tightenAction != "" && len(views) == 1 {
			d.OnAlert = AutoTighten(compiledSet[0], ho.tightenAction, ho.tightenCond)
		}
		cfg.Drift = &d
	}
	if len(views) == 1 {
		return New(compiledSet[0], cfg)
	}
	mv, err := compiler.MergeViews(compiledSet...)
	if err != nil {
		return nil, fmt.Errorf("stream: merge views: %w", err)
	}
	return NewMulti(mv, cfg)
}

// applyStreamingDecl fills windowing fields the request left unset from
// the view's <streaming> declaration. Query parameters always win; a
// query that switches windowing family (count vs event time) ignores
// the declaration's other family entirely.
func applyStreamingDecl(cfg Config, s *qvlang.ResolvedStreaming, explicit map[string]bool) Config {
	if s == nil {
		return cfg
	}
	set := func(k string) bool { return explicit != nil && explicit[k] }
	// An explicit count-window request pins count windowing even when the
	// view declares event time; an explicit eventtime pins event time.
	declEvent := s.EventTime.Value() != ""
	if declEvent && !set("eventtime") && !set("window") && !set("slide") {
		cfg.EventTimeKey = evidence.Key(s.EventTime)
	}
	// window-duration and session-gap are mutually exclusive: an explicit
	// choice of either suppresses the declaration's other variant.
	if !set("window-duration") && !set("session-gap") {
		if s.Window > 0 {
			cfg.WindowDuration = s.Window
		}
		if s.SessionGap > 0 {
			cfg.SessionGap = s.SessionGap
		}
	}
	if !set("slide-duration") && s.Slide > 0 {
		cfg.SlideDuration = s.Slide
	}
	if !set("max-out-of-order") && s.MaxOutOfOrder > 0 {
		cfg.MaxOutOfOrder = s.MaxOutOfOrder
	}
	if !set("allowed-lateness") && s.AllowedLateness > 0 {
		cfg.AllowedLateness = s.AllowedLateness
	}
	if !set("late") && s.Late == "drop" {
		cfg.LatePolicy = LateDrop
	}
	if !set("window") && s.CountWindow > 0 {
		cfg.Window = s.CountWindow
	}
	if !set("slide") && s.CountSlide > 0 {
		cfg.Slide = s.CountSlide
	}
	return cfg
}

// configFromQuery parses the request's streaming configuration. The
// returned explicit set names the parameters the query actually carried,
// so view-declaration defaults know what not to override.
func configFromQuery(r *http.Request) (Config, []string, map[string]bool, error) {
	q := r.URL.Query()
	var views []string
	for _, v := range strings.Split(q.Get("views"), ",") {
		if v = strings.TrimSpace(v); v != "" {
			views = append(views, v)
		}
	}
	if len(views) == 0 {
		if view := q.Get("view"); view != "" {
			views = []string{view}
		}
	}
	if len(views) == 0 {
		return Config{}, nil, nil, fmt.Errorf("stream: missing ?view= (or ?views=a,b,c) parameter")
	}
	cfg := Config{Window: 64, Parallelism: 1}
	explicit := make(map[string]bool)
	var err error
	if s := q.Get("window"); s != "" {
		explicit["window"] = true
		if cfg.Window, err = strconv.Atoi(s); err != nil {
			return Config{}, nil, nil, fmt.Errorf("stream: bad window %q", s)
		}
	}
	if s := q.Get("slide"); s != "" {
		explicit["slide"] = true
		if cfg.Slide, err = strconv.Atoi(s); err != nil {
			return Config{}, nil, nil, fmt.Errorf("stream: bad slide %q", s)
		}
	}
	if s := q.Get("parallelism"); s != "" {
		if cfg.Parallelism, err = strconv.Atoi(s); err != nil {
			return Config{}, nil, nil, fmt.Errorf("stream: bad parallelism %q", s)
		}
	}
	if s := q.Get("timeout"); s != "" {
		if cfg.ProcessorTimeout, err = time.ParseDuration(s); err != nil {
			return Config{}, nil, nil, fmt.Errorf("stream: bad timeout %q", s)
		}
	}
	if s := q.Get("eventtime"); s != "" {
		explicit["eventtime"] = true
		cfg.EventTimeKey = evidence.Key(ontology.ExpandQName(s))
	}
	durParam := func(name string, dst *time.Duration) error {
		s := q.Get(name)
		if s == "" {
			return nil
		}
		explicit[name] = true
		d, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("stream: bad %s %q", name, s)
		}
		*dst = d
		return nil
	}
	for name, dst := range map[string]*time.Duration{
		"window-duration":  &cfg.WindowDuration,
		"slide-duration":   &cfg.SlideDuration,
		"session-gap":      &cfg.SessionGap,
		"max-out-of-order": &cfg.MaxOutOfOrder,
		"allowed-lateness": &cfg.AllowedLateness,
	} {
		if err := durParam(name, dst); err != nil {
			return Config{}, nil, nil, err
		}
	}
	switch s := q.Get("late"); s {
	case "":
	case "supersede":
		explicit["late"] = true
		cfg.LatePolicy = LateSupersede
	case "drop":
		explicit["late"] = true
		cfg.LatePolicy = LateDrop
	default:
		return Config{}, nil, nil, fmt.Errorf("stream: bad late policy %q (want supersede or drop)", s)
	}
	cfg.DropPartial = q.Get("partial") == "drop"
	cfg.SkipFailedWindows = q.Get("on-error") == "skip"
	return cfg, views, explicit, nil
}
