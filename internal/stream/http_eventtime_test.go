package stream_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qurator/internal/compiler"
	"qurator/internal/qvlang"
	"qurator/internal/stream"
)

// streamingViewXML is the paper view with a <streaming> declaration:
// event-time tumbling windows of 100ms on q:ObservedAt, superseding late
// data for 1s.
var streamingViewXML = strings.Replace(qvlang.PaperViewXML, "</QualityView>",
	`<streaming eventtime="q:ObservedAt" window="100ms" max-out-of-order="0s" allowed-lateness="1s" late="supersede"/>
</QualityView>`, 1)

func eventStreamServer(t *testing.T, opts ...stream.HandlerOption) *httptest.Server {
	t.Helper()
	compile := func(view string) (*compiler.Compiled, error) {
		switch view {
		case "protein-id-quality":
			return compileViewXML(t, qvlang.PaperViewXML, identityAnnotator()), nil
		case "declared":
			return compileViewXML(t, streamingViewXML, identityAnnotator()), nil
		}
		return nil, fmt.Errorf("unknown view %q", view)
	}
	srv := httptest.NewServer(stream.Handler(compile, opts...))
	t.Cleanup(srv.Close)
	return srv
}

type summaryLine struct {
	Window     *int   `json:"window"`
	Decided    *int   `json:"decided"`
	Kind       string `json:"kind"`
	Start      int64  `json:"start"`
	End        int64  `json:"end"`
	Late       bool   `json:"late"`
	Supersedes string `json:"supersedes"`
	Partial    bool   `json:"partial"`
}

// postStream posts NDJSON items and returns the window-summary lines.
func postStream(t *testing.T, url, body string) []summaryLine {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var summaries []summaryLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l summaryLine
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		if l.Decided != nil {
			summaries = append(summaries, l)
		}
	}
	return summaries
}

func etLine(i int, ms int64) string {
	return fmt.Sprintf("{\"item\":\"urn:lsid:test.org:hit:%d\",\"evidence\":{\"q:ObservedAt\":%d}}\n", i, ms)
}

func TestHandlerEventTimeQueryParams(t *testing.T) {
	srv := eventStreamServer(t)
	body := etLine(0, 0) + etLine(1, 25) + etLine(2, 100) + etLine(3, 150)
	sums := postStream(t, srv.URL+
		"/stream/enact?view=protein-id-quality&eventtime=q:ObservedAt&window-duration=100ms", body)
	if len(sums) != 2 {
		t.Fatalf("got %d windows, want 2", len(sums))
	}
	first := sums[0]
	if first.Kind != "tumbling" || first.Start != 0 || first.End != 100 || *first.Decided != 2 {
		t.Fatalf("first window = %+v, want tumbling [0,100) deciding 2", first)
	}
}

func TestHandlerViewDeclarationDefaults(t *testing.T) {
	srv := eventStreamServer(t)
	// No windowing query params at all: the view's <streaming> element
	// must select 100ms event-time tumbling windows.
	body := etLine(0, 0) + etLine(1, 25) + etLine(2, 150) + etLine(3, 50)
	sums := postStream(t, srv.URL+"/stream/enact?view=declared", body)
	if len(sums) != 3 {
		t.Fatalf("got %d windows, want 3 (fire, late re-fire, partial flush)", len(sums))
	}
	if sums[0].Kind != "tumbling" || sums[0].End != 100 {
		t.Fatalf("first window = %+v, want the declared tumbling [0,100)", sums[0])
	}
	re := sums[1]
	if !re.Late || re.Supersedes == "" {
		t.Fatalf("second emission = %+v, want a superseding late re-fire (declared allowed-lateness)", re)
	}

	// An explicit count-window query must win over the declaration.
	sums = postStream(t, srv.URL+"/stream/enact?view=declared&window=2", body)
	for _, s := range sums {
		if s.Kind != "" {
			t.Fatalf("explicit ?window= did not override the declaration: %+v", s)
		}
	}
	// An explicit late=drop must win over the declared supersede.
	sums = postStream(t, srv.URL+"/stream/enact?view=declared&late=drop", body)
	for _, s := range sums {
		if s.Late {
			t.Fatalf("explicit ?late=drop did not override the declaration: %+v", s)
		}
	}
}

func TestHandlerRejectsBadEventTimeParams(t *testing.T) {
	srv := eventStreamServer(t)
	for _, q := range []string{
		"view=protein-id-quality&eventtime=q:ObservedAt", // no duration
		"view=protein-id-quality&eventtime=q:ObservedAt&window-duration=nope",
		"view=protein-id-quality&eventtime=q:ObservedAt&window-duration=100ms&session-gap=50ms",
		"view=protein-id-quality&late=sideways",
	} {
		resp, err := http.Post(srv.URL+"/stream/enact?"+q, "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHandlerDriftOption(t *testing.T) {
	reg := stream.NewDriftRegistry()
	srv := eventStreamServer(t, stream.WithDrift(stream.DriftConfig{Registry: reg, MinWindows: 2}))
	var body strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&body, "{\"item\":\"urn:lsid:test.org:hit:%d\"}\n", i)
	}
	postStream(t, srv.URL+"/stream/enact?view=protein-id-quality&window=2", body.String())
	d, ok := reg.Detector("protein-id-quality")
	if !ok {
		t.Fatal("handler stream did not register a drift detector")
	}
	snap := d.Snapshot()
	tr, ok := snap[stream.AcceptRateMetric]
	if !ok || tr.Windows != 4 {
		t.Fatalf("accept-rate track = %+v, want 4 observed windows", tr)
	}
}

func TestHandlerAutoTightenOnDrift(t *testing.T) {
	// A stable accept rate then a collapse (odd items only → everything
	// rejected) must fire a drift alert that swaps in the tightened
	// filter condition. The compiled view is shared across requests via
	// the closure, so the tightening is observable after the stream.
	var compiled *compiler.Compiled
	compile := func(view string) (*compiler.Compiled, error) {
		if compiled == nil {
			compiled = compileViewXML(t, qvlang.PaperViewXML, identityAnnotator())
		}
		return compiled, nil
	}
	srv := httptest.NewServer(stream.Handler(compile,
		stream.WithDrift(stream.DriftConfig{MinWindows: 2, H: 2, K: 0.1}),
		stream.WithAutoTighten("filter top k score", "ScoreClass in q:high"),
	))
	t.Cleanup(srv.Close)

	var body strings.Builder
	// 10 balanced windows (accept rate 0.5), then 10 all-weak windows
	// (accept rate 0): a sustained collapse the CUSUM must flag.
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&body, "{\"item\":\"urn:lsid:test.org:hit:%d\"}\n", i)
	}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&body, "{\"item\":\"urn:lsid:test.org:hit:%d\"}\n", 21+2*i) // odd = weak
	}
	postStream(t, srv.URL+"/stream/enact?view=protein-id-quality&window=2", body.String())

	deadline := time.Now().Add(2 * time.Second)
	for {
		if compiled.Conditions()["filter top k score"] == "ScoreClass in q:high" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drift alert never tightened the filter (condition %q)",
				compiled.Conditions()["filter top k score"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
