package stream_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qurator/internal/compiler"
	"qurator/internal/qvlang"
	"qurator/internal/stream"
)

func streamServer(t *testing.T) *httptest.Server {
	t.Helper()
	compile := func(view string) (*compiler.Compiled, error) {
		if view != "protein-id-quality" {
			return nil, fmt.Errorf("unknown view %q", view)
		}
		return compileViewXML(t, qvlang.PaperViewXML, identityAnnotator()), nil
	}
	srv := httptest.NewServer(stream.Handler(compile))
	t.Cleanup(srv.Close)
	return srv
}

// TestHandlerEmitsBeforeInputCloses is the liveness property of the
// NDJSON endpoint: with the request body still open (producer paused
// after one window's worth of items), the first window's decisions must
// already arrive at the client.
func TestHandlerEmitsBeforeInputCloses(t *testing.T) {
	srv := streamServer(t)

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost,
		srv.URL+"/stream/enact?view=protein-id-quality&window=4", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	// Produce exactly one window, then pause with the body open.
	for i := 0; i < 4; i++ {
		if _, err := fmt.Fprintf(pw, "{\"item\":\"urn:lsid:test.org:hit:%d\"}\n", i); err != nil {
			t.Fatal(err)
		}
	}

	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers while the input stream is open")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}

	// Read the first window's four decisions + summary — all before the
	// producer writes anything further or closes the body.
	sc := bufio.NewScanner(resp.Body)
	type line struct {
		Item    string   `json:"item"`
		Outputs []string `json:"outputs"`
		Decided *int     `json:"decided"`
	}
	firstWindow := make(chan []line, 1)
	go func() {
		var got []line
		for sc.Scan() {
			var l line
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				continue
			}
			got = append(got, l)
			if l.Decided != nil { // window summary closes the window
				break
			}
		}
		firstWindow <- got
	}()
	var first []line
	select {
	case first = <-firstWindow:
	case <-time.After(10 * time.Second):
		t.Fatal("first window's decisions never arrived while the input stream was open")
	}
	if len(first) != 5 {
		t.Fatalf("first window emitted %d lines, want 4 decisions + 1 summary", len(first))
	}
	for _, l := range first[:4] {
		if l.Item == "" {
			t.Errorf("decision line missing item: %+v", l)
		}
	}
	if *first[4].Decided != 4 {
		t.Errorf("summary decided = %d, want 4", *first[4].Decided)
	}

	// Now finish the stream: one more partial window.
	fmt.Fprintf(pw, "{\"item\":\"urn:lsid:test.org:hit:4\"}\n")
	pw.Close()
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), "hit:4") {
		t.Errorf("trailing partial window missing:\n%s", rest)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	srv := streamServer(t)

	get, err := http.Get(srv.URL + "/stream/enact?view=protein-id-quality")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", get.StatusCode)
	}

	for _, q := range []string{
		"",                                 // missing view
		"view=ghost",                       // unknown view
		"view=protein-id-quality&window=x", // bad window
		"view=protein-id-quality&window=2&slide=5", // slide > window
		"view=protein-id-quality&timeout=forever",  // bad duration
	} {
		resp, err := http.Post(srv.URL+"/stream/enact?"+q, "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHandlerReportsMalformedInput(t *testing.T) {
	srv := streamServer(t)
	body := "{\"item\":\"urn:lsid:test.org:hit:0\"}\nnot json\n"
	resp, err := http.Post(srv.URL+"/stream/enact?view=protein-id-quality&window=1",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "\"error\"") {
		t.Errorf("malformed line not reported:\n%s", out)
	}
	// The valid leading item was still decided before the error.
	if !strings.Contains(string(out), "hit:0") {
		t.Errorf("valid items before the bad line were dropped:\n%s", out)
	}
}

func TestDecodeItem(t *testing.T) {
	it, err := stream.DecodeItem([]byte(`{"item":"q:spot1","evidence":{"q:HitRatio":0.5,"q:Masses":12,"note":"x","ok":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(it.ID.Value(), "spot1") {
		t.Errorf("item = %v", it.ID)
	}
	if len(it.Evidence) != 4 {
		t.Errorf("evidence = %v", it.Evidence)
	}
	for _, bad := range []string{"", "{}", `{"evidence":{}}`, "[1,2]", `{"item":" "}`} {
		if _, err := stream.DecodeItem([]byte(bad)); err == nil {
			t.Errorf("DecodeItem(%q) accepted", bad)
		}
	}
}
