package stream_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qvlang"
	"qurator/internal/stream"
)

// namedPaperView is the §5.1 paper view under a different name and filter
// threshold — same annotator, same QA set, so its quality prefix merges
// with the original's.
func namedPaperView(name, threshold string) string {
	xml := strings.ReplaceAll(qvlang.PaperViewXML,
		`name="protein-id-quality"`, fmt.Sprintf("name=%q", name))
	return strings.ReplaceAll(xml, "HR_MC &gt; 20", "HR_MC &gt; "+threshold)
}

// reducedViewXML shares the paper view's annotator and its HR-only QA but
// nothing else: a partial-overlap sibling.
func reducedViewXML(name string) string {
	return fmt.Sprintf(`<QualityView name=%q>
  <Annotator servicename="ImprintOutputAnnotator"
             servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:Coverage"/>
      <var evidence="q:Masses"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion servicename="HR score"
                    servicetype="q:HRScoreAssertion"
                    tagname="HR"
                    tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="keep scored">
    <filter>
      <condition>HR &gt; 10</condition>
    </filter>
  </action>
</QualityView>`, name)
}

// runEnactor feeds n synthetic hits through the enactor and returns the
// emitted window results in order.
func runEnactor(t *testing.T, e *stream.Enactor, cfg stream.Config, n int) []stream.WindowResult {
	t.Helper()
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- stream.Item{ID: hit(i)}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	var results []stream.WindowResult
	for r := range out {
		results = append(results, r)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	return results
}

// mergeCompiled compiles each view XML on its own stack (as quratord
// would) and merges the set.
func mergeCompiled(t *testing.T, annotator ops.Annotator, xmls ...string) *compiler.MultiView {
	t.Helper()
	views := make([]*compiler.Compiled, 0, len(xmls))
	for _, xml := range xmls {
		views = append(views, compileViewXML(t, xml, annotator))
	}
	mv, err := compiler.MergeViews(views...)
	if err != nil {
		t.Fatalf("MergeViews: %v", err)
	}
	return mv
}

// TestMultiViewStreamMatchesIndependentStreams is the streaming face of
// the MQO equivalence property: a merged multi-view stream must emit, for
// every member view, exactly the window results an independent
// single-view stream over the same items emits — same windows, same
// decisions, same statistics — while enacting each window only once.
func TestMultiViewStreamMatchesIndependentStreams(t *testing.T) {
	xmls := []string{
		namedPaperView("stream-A", "20"),
		namedPaperView("stream-B", "40"),
		reducedViewXML("stream-C"),
	}
	const n = 10
	cfg := stream.Config{Window: 4, Parallelism: 2}

	independent := make(map[string][]stream.WindowResult)
	for _, xml := range xmls {
		c := compileViewXML(t, xml, identityAnnotator())
		e, err := stream.New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		independent[c.Name()] = runEnactor(t, e, cfg, n)
	}

	mv := mergeCompiled(t, identityAnnotator(), xmls...)
	if mv.SharedPrefixes() == 0 {
		t.Fatalf("merged stream plan shares nothing: %s", mv.Describe())
	}
	me, err := stream.NewMulti(mv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(me.Plans()); got != len(xmls) {
		t.Fatalf("Plans() = %d entries, want %d", got, len(xmls))
	}
	merged := make(map[string][]stream.WindowResult)
	for _, r := range runEnactor(t, me, cfg, n) {
		merged[r.View] = append(merged[r.View], r)
	}

	if len(merged) != len(independent) {
		t.Fatalf("merged stream emitted views %v, want %d views", keysOf(merged), len(independent))
	}
	for view, want := range independent {
		got := merged[view]
		if len(got) != len(want) {
			t.Fatalf("view %s: %d merged windows, want %d", view, len(got), len(want))
		}
		for i := range want {
			if got[i].View != view {
				t.Fatalf("view %s window %d attributed to %q", view, i, got[i].View)
			}
			// Independent single-view windows carry no attribution; strip
			// the merged stream's before comparing the rest byte-for-byte.
			norm := got[i]
			norm.View = ""
			w, _ := json.Marshal(want[i])
			g, _ := json.Marshal(norm)
			if string(w) != string(g) {
				t.Errorf("view %s window %d differs:\nindependent %s\nmerged      %s", view, i, w, g)
			}
		}
	}
}

func keysOf(m map[string][]stream.WindowResult) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// mapJournal is an in-memory WindowJournal.
type mapJournal struct {
	mu sync.Mutex
	m  map[string]stream.WindowResult
}

func newMapJournal() *mapJournal {
	return &mapJournal{m: make(map[string]stream.WindowResult)}
}

func (j *mapJournal) Lookup(key string) (stream.WindowResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.m[key]
	return r, ok
}

func (j *mapJournal) Commit(key string, res stream.WindowResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m[key] = res
	return nil
}

// TestMultiViewJournalKeysArePerView: a merged stream journals every
// member view under the SAME key an independent single-view stream would
// use. So (1) windows one view already emitted before the merge replay
// while the other members commit fresh, and (2) a later merged run
// replays everything without re-enacting.
func TestMultiViewJournalKeysArePerView(t *testing.T) {
	xmlA, xmlC := namedPaperView("stream-A", "20"), reducedViewXML("stream-C")
	const n = 8
	j := newMapJournal()
	cfg := stream.Config{Window: 4, Journal: j}

	// An independent stream of C emits (and journals) its windows first.
	ce, err := stream.New(compileViewXML(t, xmlC, identityAnnotator()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cResults := runEnactor(t, ce, cfg, n)
	if len(j.m) != 2 {
		t.Fatalf("single-view run journaled %d windows, want 2", len(j.m))
	}

	// The merged A+C stream over the same items: C's windows replay the
	// journaled emissions, A's enact and commit fresh.
	me, err := stream.NewMulti(mergeCompiled(t, identityAnnotator(), xmlA, xmlC), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var aFresh, cReplayed int
	for _, r := range runEnactor(t, me, cfg, n) {
		switch r.View {
		case "stream-A":
			if r.Replayed {
				t.Errorf("window %d of A replayed with an empty journal for A", r.Seq)
			}
			aFresh++
		case "stream-C":
			if !r.Replayed {
				t.Errorf("window %d of C enacted fresh despite its journal entry", r.Seq)
			}
			w, _ := json.Marshal(cResults[r.Seq].Decisions)
			g, _ := json.Marshal(r.Decisions)
			if string(w) != string(g) {
				t.Errorf("window %d of C: replayed decisions differ from the journaled originals", r.Seq)
			}
			cReplayed++
		default:
			t.Errorf("unexpected view %q", r.View)
		}
	}
	if aFresh != 2 || cReplayed != 2 {
		t.Fatalf("A fresh=%d C replayed=%d, want 2 and 2", aFresh, cReplayed)
	}
	if len(j.m) != 4 {
		t.Fatalf("journal holds %d entries after the merged run, want 4", len(j.m))
	}

	// A second merged run is pure replay: every window of every view.
	me2, err := stream.NewMulti(mergeCompiled(t, identityAnnotator(), xmlA, xmlC), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runEnactor(t, me2, cfg, n) {
		if !r.Replayed {
			t.Errorf("window %d of %s not replayed on the second merged run", r.Seq, r.View)
		}
	}
}

// TestMultiViewSkipFailedWindows: a window whose shared annotator fails
// is reported failed once PER VIEW (each member's items went undecided),
// and the stream — and its healthy windows — keep going.
func TestMultiViewSkipFailedWindows(t *testing.T) {
	failing := ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    identityAnnotator().Provides(),
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, it := range items {
				if idx := hitIndex(it); idx >= 4 && idx < 8 {
					return fmt.Errorf("poison item %v", it)
				}
			}
			return identityAnnotator().Annotate(items, repo)
		},
	}
	mv := mergeCompiled(t, failing, namedPaperView("stream-A", "20"), reducedViewXML("stream-C"))
	e, err := stream.NewMulti(mv, stream.Config{Window: 4, SkipFailedWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	results := runEnactor(t, e, stream.Config{}, 12)
	if len(results) != 6 {
		t.Fatalf("got %d results, want 3 windows × 2 views", len(results))
	}
	perView := make(map[string][]stream.WindowResult)
	for _, r := range results {
		perView[r.View] = append(perView[r.View], r)
	}
	for view, rs := range perView {
		if len(rs) != 3 {
			t.Fatalf("view %s emitted %d windows, want 3", view, len(rs))
		}
		bad := rs[1]
		if !bad.Failed || !strings.Contains(bad.Error, "poison") || len(bad.Decisions) != 0 {
			t.Errorf("view %s failed window = %+v, want Failed with the poison error", view, bad)
		}
		for _, i := range []int{0, 2} {
			if rs[i].Failed || len(rs[i].Decisions) != 4 {
				t.Errorf("view %s healthy window %d = failed=%v decided=%d",
					view, rs[i].Seq, rs[i].Failed, len(rs[i].Decisions))
			}
		}
	}
}

// TestHandlerMergedViews drives POST /stream/enact?views=a,b through the
// HTTP endpoint: both views' summaries arrive view-attributed, and bad
// view sets are rejected up front.
func TestHandlerMergedViews(t *testing.T) {
	xmls := map[string]string{
		"stream-A": namedPaperView("stream-A", "20"),
		"stream-C": reducedViewXML("stream-C"),
	}
	compile := func(view string) (*compiler.Compiled, error) {
		xml, ok := xmls[view]
		if !ok {
			return nil, fmt.Errorf("unknown view %q", view)
		}
		return compileViewXML(t, xml, identityAnnotator()), nil
	}
	srv := httptest.NewServer(stream.Handler(compile))
	t.Cleanup(srv.Close)

	var body strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&body, "{\"item\":\"urn:lsid:test.org:hit:%d\"}\n", i)
	}
	resp, err := http.Post(srv.URL+"/stream/enact?views=stream-A,stream-C&window=4",
		"application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	summaries := make(map[string]int) // view → windows
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l struct {
			View    string `json:"view"`
			Decided *int   `json:"decided"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if l.Error != "" {
			t.Fatalf("stream reported error: %s", l.Error)
		}
		if l.Decided != nil {
			if *l.Decided != 4 {
				t.Errorf("summary decided = %d, want 4: %s", *l.Decided, sc.Text())
			}
			summaries[l.View]++
		}
	}
	if summaries["stream-A"] != 2 || summaries["stream-C"] != 2 {
		t.Errorf("window summaries per view = %v, want 2 each", summaries)
	}

	for _, q := range []string{
		"views=stream-A,ghost&window=4",    // unknown member
		"views=stream-A,stream-A&window=4", // duplicate view name
		"views=,&window=4",                 // empty set
	} {
		resp, err := http.Post(srv.URL+"/stream/enact?"+q, "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status = %d, want 400", q, resp.StatusCode)
		}
	}
}
