package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
)

// wireItem is the NDJSON input record: one data item per line, with
// optional inline evidence. Evidence keys are IRIs or IQ-ontology QNames
// ("q:name", "tag/name"); values are JSON numbers, strings or booleans.
//
//	{"item":"urn:lsid:ispider.org:spot:7","evidence":{"q:HitRatio":0.62}}
type wireItem struct {
	Item     string                     `json:"item"`
	Evidence map[string]json.RawMessage `json:"evidence,omitempty"`
}

// DecodeItem parses one NDJSON line into a stream Item.
func DecodeItem(line []byte) (Item, error) {
	var w wireItem
	if err := json.Unmarshal(line, &w); err != nil {
		return Item{}, fmt.Errorf("stream: bad NDJSON item: %w", err)
	}
	if strings.TrimSpace(w.Item) == "" {
		return Item{}, fmt.Errorf("stream: NDJSON item record lacks \"item\"")
	}
	it := Item{ID: evidence.Item(ontology.ExpandQName(w.Item))}
	for key, raw := range w.Evidence {
		v, err := decodeValue(raw)
		if err != nil {
			return Item{}, fmt.Errorf("stream: evidence %q: %w", key, err)
		}
		if v.IsNull() {
			continue
		}
		if it.Evidence == nil {
			it.Evidence = make(map[evidence.Key]evidence.Value, len(w.Evidence))
		}
		it.Evidence[ontology.ExpandQName(key)] = v
	}
	return it, nil
}

func decodeValue(raw json.RawMessage) (evidence.Value, error) {
	var v any
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return evidence.Null, err
	}
	switch x := v.(type) {
	case nil:
		return evidence.Null, nil
	case json.Number:
		if i, err := x.Int64(); err == nil && !strings.ContainsAny(x.String(), ".eE") {
			return evidence.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return evidence.Null, err
		}
		return evidence.Float(f), nil
	case string:
		return evidence.String_(x), nil
	case bool:
		return evidence.Bool(x), nil
	default:
		return evidence.Null, fmt.Errorf("unsupported evidence value %s", string(raw))
	}
}

// ReadItems decodes NDJSON records from r into the channel until EOF or
// ctx-free termination, closing out on return. Blank lines are skipped.
// The first malformed line aborts the read with its error.
func ReadItems(r io.Reader, out chan<- Item) error {
	defer close(out)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		it, err := DecodeItem([]byte(line))
		if err != nil {
			return err
		}
		out <- it
	}
	return sc.Err()
}

// WriteResults encodes window results as NDJSON — one decision object per
// line, interleaved with one window-summary line per window (after its
// decisions). If w implements http.Flusher-style flushing via the flush
// callback, each window is flushed as soon as it is written, so consumers
// see decisions while the input stream is still open.
func WriteResults(w io.Writer, results <-chan WindowResult, flush func()) error {
	enc := json.NewEncoder(w)
	for res := range results {
		for _, d := range res.Decisions {
			if err := enc.Encode(d); err != nil {
				return err
			}
		}
		summary := struct {
			Window     int                    `json:"window"`
			View       string                 `json:"view,omitempty"`
			Size       int                    `json:"size"`
			Decided    int                    `json:"decided"`
			Partial    bool                   `json:"partial,omitempty"`
			Failed     bool                   `json:"failed,omitempty"`
			Replayed   bool                   `json:"replayed,omitempty"`
			Kind       string                 `json:"kind,omitempty"`
			Start      int64                  `json:"start,omitempty"`
			End        int64                  `json:"end,omitempty"`
			Late       bool                   `json:"late,omitempty"`
			Supersedes string                 `json:"supersedes,omitempty"`
			Error      string                 `json:"error,omitempty"`
			Stats      map[string]WindowStats `json:"stats,omitempty"`
		}{res.Seq, res.View, res.Size, len(res.Decisions), res.Partial, res.Failed, res.Replayed,
			res.Kind, res.Start, res.End, res.Late, res.Supersedes, res.Error, res.Stats}
		if err := enc.Encode(summary); err != nil {
			return err
		}
		if flush != nil {
			flush()
		}
	}
	return nil
}
