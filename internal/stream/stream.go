// Package stream enacts compiled quality views continuously over
// unbounded data. The paper's enactment model is strictly batch: a view
// runs once over a finished collection, and collection-scoped QAs (the
// §5.1 avg±stddev classifier) assume the whole run is in hand. This
// package lifts that restriction: items arrive one at a time, a
// count-based windowing policy groups them into finite windows, each
// window is enacted through the unmodified compiled workflow by a worker
// pool, and per-item accept/reject/class decisions are emitted as soon as
// their window resolves — while the input is still open.
//
// The semantics is the windowed closure of batch enactment, with one law
// tying the two together: enacting a stream through a single window equal
// to the collection size yields exactly the batch result (the equivalence
// property test). Collection-scoped QAs therefore recompute their
// thresholds per window — the window is the collection.
//
// The pipeline is staged over bounded channels, so a slow consumer
// back-pressures the workers, the windower, and finally the producer; a
// cancelled context unwinds every stage.
//
//	in ──► windower ──► jobs ──► worker pool ──► results ──► reorder ──► out
//	        (live Amap,   (cap P)  (P × enact)     (cap P)    (per-window
//	         Welford)                                          order)
package stream

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/qcache"
	"qurator/internal/telemetry"
	"qurator/internal/workflow"
)

// Streaming metrics, labelled by view (workflow) name. Lag is measured
// from window fire to in-order emission, so it includes queueing, the
// enactment itself, and any reorder stall behind a slower predecessor.
var (
	streamItems = telemetry.Default.CounterVec(
		"qurator_stream_items_total",
		"Items ingested from the input stream.",
		"view")
	streamWindows = telemetry.Default.CounterVec(
		"qurator_stream_windows_total",
		"Windows by outcome: ok, skipped (SkipFailedWindows), or failed.",
		"view", "status")
	streamQueueDepth = telemetry.Default.GaugeVec(
		"qurator_stream_queue_depth",
		"Fired windows waiting for a worker.",
		"view")
	streamWindowLag = telemetry.Default.HistogramVec(
		"qurator_stream_window_lag_seconds",
		"Time from window fire to in-order result emission.",
		nil, "view")
	streamWindowDuration = telemetry.Default.HistogramVec(
		"qurator_stream_window_duration_seconds",
		"Wall-clock time of one window enactment.",
		nil, "view")
	streamLateItems = telemetry.Default.CounterVec(
		"qurator_stream_late_items_total",
		"Late item arrivals by outcome: superseded (their window re-fired with a q:Supersedes link) or dropped (beyond allowed lateness / retention, or LatePolicy drop).",
		"view", "outcome")
	streamWatermark = telemetry.Default.GaugeVec(
		"qurator_stream_watermark_seconds",
		"Low watermark of the event-time stream, in unix seconds.",
		"view")
)

// Item is one arriving data item: its identity plus optional inline
// evidence. Inline evidence travels inside the window's annotation map,
// so purely-inline streams never touch an annotation repository — the
// repositories (and the view's annotators) still run per window for
// evidence the stream does not carry.
type Item struct {
	// ID identifies the data item (an LSID-wrapped URI).
	ID evidence.Item
	// Evidence carries inline evidence values keyed by evidence type.
	Evidence map[evidence.Key]evidence.Value
}

// Decision is the streaming verdict for one item: which action outputs it
// reached (empty = rejected by every action) and the class assignments it
// received. Classes come from the consolidated assertion state, so a
// rejected item still reports why it was rejected.
type Decision struct {
	// Item is the data item URI.
	Item string `json:"item"`
	// Window is the sequence number of the window that decided the item.
	Window int `json:"window"`
	// Outputs lists the workflow outputs ("<action>:<port>") containing
	// the item, in the view's declaration order.
	Outputs []string `json:"outputs"`
	// Classes maps classification-model IRIs to assigned label IRIs.
	Classes map[string]string `json:"classes,omitempty"`
}

// WindowStats summarises one numeric column over one window, with the
// §5.1 classifier cut points (mean ± stddev).
type WindowStats struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// Lo and Hi are the avg±stddev classification thresholds in force for
	// this window.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// WindowResult is one enacted window: the decisions for its newly-decided
// items (in arrival order) and the per-key statistics of the window.
type WindowResult struct {
	// Seq is the window sequence number, starting at 0. Results are
	// emitted in Seq order regardless of worker completion order.
	Seq int `json:"window"`
	// Size is the number of items enacted (for sliding windows this
	// includes the context items decided by earlier windows).
	Size int `json:"size"`
	// Partial marks the final short window emitted when the input closes
	// before a full window accumulated.
	Partial bool `json:"partial,omitempty"`
	// Failed marks a window whose enactment failed under
	// SkipFailedWindows: its items were NOT decided (Decisions is empty)
	// and Error carries the cause. The stream itself kept going.
	Failed bool `json:"failed,omitempty"`
	// Replayed marks a window answered from the emission journal instead
	// of enacted: an identical window (same view, items and inline
	// evidence) was already decided and emitted — typically by a node
	// that has since died. Its decisions are the journaled originals.
	Replayed bool `json:"replayed,omitempty"`
	// View names the quality view that decided the window — carried so
	// downstream journals can attribute the emission without re-deriving
	// it from the idempotency key.
	View string `json:"view,omitempty"`
	// Error is the enactment failure for a Failed window.
	Error string `json:"error,omitempty"`
	// Kind names the event-time window shape ("tumbling", "sliding" or
	// "session"); empty for count-based windows.
	Kind string `json:"kind,omitempty"`
	// Start and End are the event-time window bounds in unix milliseconds
	// (End exclusive). Zero for count-based windows.
	Start int64 `json:"start,omitempty"`
	End   int64 `json:"end,omitempty"`
	// Late marks a superseding re-emission: a late item arrived after this
	// window had already fired, so the window was re-enacted in full and
	// this result replaces the one named by Supersedes.
	Late bool `json:"late,omitempty"`
	// Supersedes is the content-addressed journal key of the emission this
	// result replaces (set on Late results). The cluster journal links the
	// two with a q:Supersedes provenance triple.
	Supersedes string `json:"supersedes,omitempty"`
	// Decisions holds one decision per newly-decided item.
	Decisions []Decision `json:"decisions"`
	// firedAt is when the windower fired the window; the enactor uses it
	// to observe end-to-end window lag at emission time.
	firedAt time.Time
	// Stats maps annotation-map key IRIs (QA score tags, plus inline
	// numeric evidence types) to their window statistics. Tag statistics
	// are computed from the enacted window; evidence statistics are
	// maintained incrementally by the windower (Welford add/remove).
	Stats map[string]WindowStats `json:"stats,omitempty"`
}

// LatePolicy says what to do with an item that arrives after the window
// owning its event time (or, for count windows, the window that decided
// it) has already fired.
type LatePolicy int

const (
	// LateSupersede re-enacts the affected window in full and emits a
	// superseding result linked to the original via Supersedes /
	// q:Supersedes — the default. The item must still be within the
	// window's retention (AllowedLateness for event time, LateRetention
	// fires for count windows); beyond that it is dropped and counted.
	LateSupersede LatePolicy = iota
	// LateDrop discards late items, counting them in
	// qurator_stream_late_items_total{outcome="dropped"}.
	LateDrop
)

// Config parameterises a streaming enactment.
type Config struct {
	// Window is the count-based window size (required, ≥ 1, unless
	// EventTimeKey selects event-time windowing).
	Window int
	// Slide is the number of new items between window fires. 0 or
	// Slide == Window gives tumbling windows; 0 < Slide < Window gives
	// sliding windows where each fire decides the Slide newest items in
	// the context of the full window.
	Slide int
	// Parallelism is the worker-pool degree: how many windows enact
	// concurrently (default 1). Per-window order is preserved at the
	// output regardless.
	Parallelism int
	// DropPartial suppresses the final short window when the input closes
	// mid-window; by default the remainder is enacted as a partial window.
	DropPartial bool
	// ProcessorTimeout, when positive, bounds every processor invocation
	// inside the compiled workflow (stuck annotators fail the window
	// instead of wedging the stream).
	ProcessorTimeout time.Duration
	// SkipFailedWindows keeps the stream alive through window enactment
	// failures: instead of cancelling the whole pipeline on the first
	// error, the failed window is reported as a WindowResult with Failed
	// set (and no decisions) and later windows proceed. Off by default —
	// a batch-faithful stream fails fast.
	SkipFailedWindows bool
	// EventTimeKey switches the stream from count-based to event-time
	// windowing: every item must carry this inline-evidence key, holding
	// its event time as an integer (unix milliseconds) or an RFC 3339
	// string. Items group into windows by event time, and windows fire
	// when the low watermark (max event time seen − MaxOutOfOrder) passes
	// their end.
	EventTimeKey evidence.Key
	// WindowDuration is the event-time window width (tumbling, or sliding
	// with SlideDuration). Mutually exclusive with SessionGap.
	WindowDuration time.Duration
	// SlideDuration is the event-time slide: 0 or == WindowDuration gives
	// tumbling windows; smaller values give aligned sliding windows where
	// each item is decided by the earliest window containing it.
	SlideDuration time.Duration
	// SessionGap, when positive, selects session windows: bursts of items
	// separated by gaps of at least SessionGap, each burst one window.
	SessionGap time.Duration
	// MaxOutOfOrder bounds the tolerated disorder: the watermark trails
	// the maximum event time by this much, so items up to MaxOutOfOrder
	// out of order are still windowed normally. 0 = in-order feed.
	MaxOutOfOrder time.Duration
	// AllowedLateness keeps a fired event-time window's state for this
	// long past its end (in watermark time): an item arriving below the
	// watermark but within the lateness bound re-fires its window as a
	// superseding emission. Beyond the bound late items are dropped.
	AllowedLateness time.Duration
	// LatePolicy picks between superseding re-emission (default) and
	// dropping late data.
	LatePolicy LatePolicy
	// LateRetention is how many fired count windows are retained to route
	// re-arrivals of decided items as late data (default 4). Event-time
	// windows retain by AllowedLateness instead.
	LateRetention int
	// Drift, when set, runs an EWMA+CUSUM drift detector over the stream's
	// per-window quality metrics (accept rate, evidence and tag means).
	Drift *DriftConfig
	// Journal, when set, gives window emission at-most-once semantics
	// across re-enactments (cluster failover): before enacting a fired
	// window the enactor looks its content-addressed idempotency key up —
	// a hit replays the journaled result instead of re-enacting; a miss
	// enacts and Commits the result durably before it is emitted. Paired
	// with an at-least-once replaying producer this yields exactly-once
	// decision emission.
	Journal WindowJournal
}

// WindowJournal is the durable emission record the cluster layer plugs
// into a streaming enactment. Keys are content-addressed over the
// window's view, items and inline evidence (see Enactor.windowKey), so
// the same window re-sent to a different node — or to the same node
// after a restart — maps to the same entry.
type WindowJournal interface {
	// Lookup returns the journaled result for key, if any.
	Lookup(key string) (WindowResult, bool)
	// Commit records the enacted result under key, durably, before any
	// decision from it reaches a client. An error fails the window (it
	// is NOT emitted): emitting without a journal entry could duplicate
	// the window after failover.
	Commit(key string, res WindowResult) error
}

// Enactor runs one or more compiled quality views over unbounded item
// sequences. One Enactor serves one stream at a time; the compiled views
// it wraps may be shared with batch enactments when idle. A multi-view
// enactor (NewMulti) feeds every window through the merged plan once —
// shared annotator/enrichment/QA prefixes run once per window — and
// emits one WindowResult per member view per window.
type Enactor struct {
	compiled *compiler.Compiled  // single-view mode (nil under NewMulti)
	multi    *compiler.MultiView // multi-view mode (nil under New)
	views    []streamView        // member views in emission order; len 1 under New
	cfg      Config
}

// streamView is one enacted view's identity and abstract plan — what the
// per-window decision projection needs.
type streamView struct {
	name string
	plan compiler.Plan
}

// EventTime reports whether the configuration selects event-time
// windowing (an event-time evidence key is declared).
func (cfg Config) EventTime() bool { return cfg.EventTimeKey.Value() != "" }

// normalise validates and defaults a streaming configuration.
func normalise(cfg Config) (Config, error) {
	if cfg.EventTime() {
		switch {
		case cfg.SessionGap > 0 && cfg.WindowDuration > 0:
			return cfg, fmt.Errorf("stream: session-gap and window-duration are mutually exclusive")
		case cfg.SessionGap <= 0 && cfg.WindowDuration <= 0:
			return cfg, fmt.Errorf("stream: event-time windowing needs window-duration or session-gap")
		}
		if cfg.WindowDuration > 0 {
			if cfg.SlideDuration == 0 {
				cfg.SlideDuration = cfg.WindowDuration
			}
			if cfg.SlideDuration < 0 || cfg.SlideDuration > cfg.WindowDuration {
				return cfg, fmt.Errorf("stream: slide-duration must be in (0, window-duration], got %v", cfg.SlideDuration)
			}
		}
		if cfg.MaxOutOfOrder < 0 {
			return cfg, fmt.Errorf("stream: negative max-out-of-order %v", cfg.MaxOutOfOrder)
		}
		if cfg.AllowedLateness < 0 {
			return cfg, fmt.Errorf("stream: negative allowed-lateness %v", cfg.AllowedLateness)
		}
	} else {
		if cfg.Window < 1 {
			return cfg, fmt.Errorf("stream: window size must be ≥ 1, got %d", cfg.Window)
		}
		if cfg.Slide == 0 {
			cfg.Slide = cfg.Window
		}
		if cfg.Slide < 1 || cfg.Slide > cfg.Window {
			return cfg, fmt.Errorf("stream: slide must be in [1, window], got %d", cfg.Slide)
		}
	}
	if cfg.LateRetention == 0 {
		cfg.LateRetention = defaultLateRetention
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	if cfg.Drift != nil {
		d := cfg.Drift.withDefaults()
		cfg.Drift = &d
	}
	return cfg, nil
}

// New validates the configuration and prepares a streaming enactor for
// the compiled view.
func New(compiled *compiler.Compiled, cfg Config) (*Enactor, error) {
	if compiled == nil {
		return nil, fmt.Errorf("stream: nil compiled view")
	}
	cfg, err := normalise(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.ProcessorTimeout > 0 {
		compiled.Workflow.SetProcessorTimeout(cfg.ProcessorTimeout)
	}
	return &Enactor{
		compiled: compiled,
		views:    []streamView{{name: compiled.Name(), plan: compiled.Plan()}},
		cfg:      cfg,
	}, nil
}

// NewMulti prepares a streaming enactor over a merged view set: each
// window is enacted ONCE through the merged plan and every member view's
// decisions are emitted as its own WindowResult — same Seq, view order,
// distinguished by the View field. Journal keys stay per (view, window
// content), identical to the keys N independent single-view streams
// would use, so cluster failover replays/commits each view's emission
// independently.
func NewMulti(mv *compiler.MultiView, cfg Config) (*Enactor, error) {
	if mv == nil {
		return nil, fmt.Errorf("stream: nil merged view set")
	}
	cfg, err := normalise(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.ProcessorTimeout > 0 {
		mv.Workflow().SetProcessorTimeout(cfg.ProcessorTimeout)
	}
	e := &Enactor{multi: mv, cfg: cfg}
	for _, v := range mv.Views() {
		e.views = append(e.views, streamView{name: v.Name(), plan: v.Plan()})
	}
	return e, nil
}

// name labels the stream's telemetry: the view name, or the merged plan
// name under NewMulti.
func (e *Enactor) name() string {
	if e.multi != nil {
		return e.multi.Name()
	}
	return e.compiled.Name()
}

// Plan returns the abstract plan of the enacted view (the first member's
// plan for a multi-view enactor; see Plans).
func (e *Enactor) Plan() compiler.Plan { return e.views[0].plan }

// Plans returns every enacted view's abstract plan in emission order.
func (e *Enactor) Plans() []compiler.Plan {
	out := make([]compiler.Plan, len(e.views))
	for i, v := range e.views {
		out[i] = v.plan
	}
	return out
}

// Config returns the normalised configuration in force.
func (e *Enactor) Config() Config { return e.cfg }

// Run consumes items from in until it closes or ctx is cancelled,
// enacting windows and emitting their results on out in window order. It
// closes out before returning. The first enactment error cancels the
// whole pipeline and is returned; a parent-context cancellation returns
// the context's error.
func (e *Enactor) Run(ctx context.Context, in <-chan Item, out chan<- WindowResult) (err error) {
	defer close(out)
	view := e.name()
	// One root span covers the whole stream, so every window enactment
	// below joins a single trace.
	ctx, streamSpan := telemetry.StartSpan(ctx, "stream:"+view)
	streamSpan.SetAttr("view", view)
	defer func() { streamSpan.EndErr(err) }()
	queueDepth := streamQueueDepth.With(view)
	defer queueDepth.Set(0)

	var drift *Detector
	if e.cfg.Drift != nil {
		drift = NewDetector(view, *e.cfg.Drift)
		if e.cfg.Drift.Registry != nil {
			e.cfg.Drift.Registry.register(view, drift)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan windowJob, e.cfg.Parallelism)
	// Each job resolves to one result per enacted view (len 1 for a
	// single-view stream), reordered and emitted as a unit so a window's
	// per-view results are adjacent on out.
	results := make(chan []WindowResult, e.cfg.Parallelism)

	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Stage 1: ingest + window. A single goroutine keeps the window state
	// (live Amap + accumulators for count windows; open/retained windows,
	// watermark and lateness bookkeeping for event time), emitting jobs as
	// windows fire — one watermark advance may close several windows, and
	// a late arrival may re-fire an emitted one, so a single push can
	// yield several jobs. The bounded jobs channel is the backpressure
	// point towards the producer.
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		defer close(jobs)
		var w windowPolicy
		if e.cfg.EventTime() {
			w = newEventWindower(e.cfg, view)
		} else {
			w = newWindower(e.cfg, view)
		}
		enqueue := func(js []*windowJob) bool {
			for _, j := range js {
				select {
				case jobs <- *j:
					queueDepth.Add(1)
				case <-ctx.Done():
					return false
				}
			}
			return true
		}
		for {
			select {
			case <-ctx.Done():
				return
			case it, ok := <-in:
				if !ok {
					if js := w.flush(); !e.cfg.DropPartial {
						enqueue(js)
					}
					return
				}
				streamItems.With(view).Inc()
				js, perr := w.push(it)
				if perr != nil {
					fail(fmt.Errorf("stream: %w", perr))
					return
				}
				if !enqueue(js) {
					return
				}
			}
		}
	}()

	// Stage 2: worker pool. Each worker enacts whole windows through the
	// compiled workflow; annotator and QA invocations of distinct windows
	// therefore run fanned out across the pool, and within one window the
	// workflow engine already runs independent processors concurrently.
	var workerWG sync.WaitGroup
	for i := 0; i < e.cfg.Parallelism; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for j := range jobs {
				queueDepth.Add(-1)
				// Per-view journal keys: a merged stream journals each
				// member under the SAME key an independent single-view
				// stream of it would use, so views journaled before a
				// failover replay while the rest commit fresh.
				keys := make([]string, len(e.views))
				cached := make([]*WindowResult, len(e.views))
				hits := 0
				if e.cfg.Journal != nil {
					for i, sv := range e.views {
						keys[i] = e.windowKey(sv.name, j)
						if res, ok := e.cfg.Journal.Lookup(keys[i]); ok {
							// Already decided and emitted once (possibly by
							// a node that has since died): replay the
							// journaled decisions instead of re-enacting.
							// Attribution belongs to the emitting stream,
							// not the journal — the same entry serves a
							// single-view stream (unattributed) and a
							// merged one (attributed to the member view).
							res.Seq = j.seq
							res.Replayed = true
							res.firedAt = j.firedAt
							res.View = ""
							if e.multi != nil {
								res.View = sv.name
							}
							cached[i] = &res
							hits++
						}
					}
				}
				var batch []WindowResult
				var err error
				if hits < len(e.views) {
					began := time.Now()
					batch, err = e.enactBatch(ctx, j)
					streamWindowDuration.With(view).Observe(time.Since(began).Seconds())
				} else {
					// Every view already journaled: pure replay, no enactment.
					batch = make([]WindowResult, len(e.views))
				}
				if err == nil {
					for i := range e.views {
						if cached[i] != nil {
							streamWindows.With(view, "replayed").Inc()
							batch[i] = *cached[i]
							continue
						}
						if batch[i].Failed {
							streamWindows.With(view, "skipped").Inc()
							continue
						}
						if j.late && j.prev != nil {
							// A superseding re-fire names the emission it
							// replaces by the journal key the predecessor
							// window content maps to — derivable with or
							// without a journal attached.
							batch[i].Supersedes = e.windowKey(e.views[i].name, *j.prev)
						}
						streamWindows.With(view, "ok").Inc()
						if keys[i] != "" {
							// The journal entry must be durable before the
							// first decision escapes: a commit failure is a
							// window failure, not a silent best-effort.
							if cerr := e.cfg.Journal.Commit(keys[i], batch[i]); cerr != nil {
								err = fmt.Errorf("stream: window %d: journal commit: %w", j.seq, cerr)
								break
							}
						}
					}
				}
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					if !e.cfg.SkipFailedWindows {
						streamWindows.With(view, "failed").Inc()
						fail(err)
						return
					}
					// Skip-and-report: the window's items go undecided,
					// the stream lives on.
					batch = batch[:0]
					for _, sv := range e.views {
						streamWindows.With(view, "skipped").Inc()
						batch = append(batch, e.failedResult(sv, j, err))
					}
				}
				select {
				case results <- batch:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		workerWG.Wait()
		close(results)
	}()

	// Stage 3: reorder + emit. Windows complete out of order under
	// parallelism; decisions are released strictly in window order (and,
	// within one window, in view order). The pending map holds at most
	// Parallelism batches (each worker owns at most one
	// completed-but-unreleased window).
	pending := make(map[int][]WindowResult, e.cfg.Parallelism)
	next := 0
	for batch := range results {
		if ctx.Err() != nil || len(batch) == 0 {
			continue // drain so the workers can exit
		}
		pending[batch[0].Seq] = batch
		for ctx.Err() == nil {
			rs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for _, r := range rs {
				select {
				case out <- r:
					if !r.firedAt.IsZero() {
						streamWindowLag.With(view).Observe(time.Since(r.firedAt).Seconds())
					}
					if drift != nil && !r.Failed {
						drift.Observe(r)
					}
				case <-ctx.Done():
				}
				if ctx.Err() != nil {
					break
				}
			}
			next++
		}
	}
	ingestWG.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// windowJob is one window ready to enact: a snapshot of the window Amap,
// the item order, which items this fire decides, and the window's
// inline-evidence statistics. Count windows decide the items[decideFrom:]
// suffix; event-time windows and superseding re-fires carry an explicit
// decide set.
type windowJob struct {
	seq        int
	items      []evidence.Item
	m          *evidence.Map
	decideFrom int
	decide     []evidence.Item // explicit decide set; nil = items[decideFrom:]
	partial    bool
	stats      map[string]WindowStats
	firedAt    time.Time

	// Event-time window identity: shape and bounds (zero for count).
	kind       string
	start, end time.Time
	// Supersession: gen counts this window's fires (0 = original), late
	// marks a superseding re-fire, prev is the previously-emitted content
	// of the same window (for deriving the superseded journal key).
	gen  int
	late bool
	prev *windowJob
}

// decided returns the items this fire decides.
func (j *windowJob) decided() []evidence.Item {
	if j.decide != nil {
		return j.decide
	}
	return j.items[j.decideFrom:]
}

// enactBatch runs one window through the compiled plan — once — and
// derives one WindowResult per enacted view, in view order. A member
// view's own failure (its quality service died and its degraded mode is
// off) fails the whole window unless SkipFailedWindows is set, in which
// case that view's result is marked Failed while its siblings' decisions
// stand — exactly what N independent streams over the same items would
// report.
func (e *Enactor) enactBatch(ctx context.Context, j windowJob) (_ []WindowResult, err error) {
	ctx, span := telemetry.StartSpan(ctx, fmt.Sprintf("window:%d", j.seq))
	span.SetAttr("size", fmt.Sprint(len(j.items)))
	defer func() { span.EndErr(err) }()

	if e.multi == nil {
		ports, err := e.compiled.Execute(ctx, workflow.Ports{compiler.PortDataSet: j.m})
		if err != nil {
			return nil, fmt.Errorf("stream: window %d: %w", j.seq, err)
		}
		outputs := make(map[string]*evidence.Map, len(ports))
		for name, v := range ports {
			m, ok := v.(*evidence.Map)
			if !ok {
				return nil, fmt.Errorf("stream: window %d: output %q is %T, not *evidence.Map", j.seq, name, v)
			}
			outputs[name] = m
		}
		return []WindowResult{deriveResult(e.views[0], outputs, j, j.stats)}, nil
	}

	res, eerr := e.multi.EnactMap(ctx, j.m)
	if eerr != nil {
		return nil, fmt.Errorf("stream: window %d: %w", j.seq, eerr)
	}
	batch := make([]WindowResult, 0, len(e.views))
	for _, sv := range e.views {
		vr := res[sv.name]
		if vr.Err != nil {
			if !e.cfg.SkipFailedWindows {
				return nil, fmt.Errorf("stream: window %d: %w", j.seq, vr.Err)
			}
			batch = append(batch, e.failedResult(sv, j, vr.Err))
			continue
		}
		// Each view derives its stats into its own copy: the windower's
		// inline-evidence statistics are per window, not per view.
		res := deriveResult(sv, vr.Outputs, j, copyStats(j.stats))
		res.View = sv.name // single-view windows stay unattributed, as before
		batch = append(batch, res)
	}
	return batch, nil
}

// failedResult is the undecided WindowResult of one view whose window
// enactment failed under SkipFailedWindows.
func (e *Enactor) failedResult(sv streamView, j windowJob, err error) WindowResult {
	res := WindowResult{
		Seq:       j.seq,
		Size:      len(j.items),
		Partial:   j.partial,
		Failed:    true,
		Error:     err.Error(),
		Kind:      j.kind,
		Late:      j.late,
		Decisions: []Decision{},
		firedAt:   j.firedAt,
	}
	if j.kind != "" {
		res.Start, res.End = j.start.UnixMilli(), j.end.UnixMilli()
	}
	if e.multi != nil {
		res.View = sv.name // single-view failed windows stay unattributed, as before
	}
	return res
}

// copyStats clones the windower's incremental statistics so sibling
// views' tag statistics never land in one shared map.
func copyStats(stats map[string]WindowStats) map[string]WindowStats {
	if stats == nil {
		return nil
	}
	out := make(map[string]WindowStats, len(stats))
	for k, v := range stats {
		out[k] = v
	}
	return out
}

// deriveResult projects one view's outputs of an enacted window into its
// WindowResult: the newly-decided items' decisions plus the window tag
// statistics.
func deriveResult(sv streamView, outputs map[string]*evidence.Map, j windowJob, stats map[string]WindowStats) WindowResult {
	cons := outputs[compiler.OutputAnnotations]

	// Degraded quarantine enactments grow an extra output; surface it in
	// the decisions so quarantined items are visibly parked rather than
	// silently rejected.
	outputOrder := sv.plan.Outputs
	if _, ok := outputs[compiler.QuarantineOutput]; ok {
		outputOrder = append(append([]string(nil), outputOrder...), compiler.QuarantineOutput)
	}

	res := WindowResult{
		Seq:       j.seq,
		Size:      len(j.items),
		Partial:   j.partial,
		Kind:      j.kind,
		Late:      j.late,
		Decisions: Decide(j.decided(), outputs, cons, outputOrder, j.seq),
		Stats:     stats,
		firedAt:   j.firedAt,
	}
	if j.kind != "" {
		res.Start, res.End = j.start.UnixMilli(), j.end.UnixMilli()
	}
	// Window score statistics: one Welford pass over the enacted window
	// per QA tag — O(1) per (item, tag).
	if cons == nil {
		return res
	}
	for _, tag := range sv.plan.Tags {
		var acc evidence.Accumulator
		for _, it := range j.items {
			if f, ok := cons.Get(it, tag).AsFloat(); ok {
				acc.Add(f)
			}
		}
		if acc.N() == 0 {
			continue
		}
		if res.Stats == nil {
			res.Stats = make(map[string]WindowStats)
		}
		lo, hi := acc.Thresholds()
		res.Stats[tag.Value()] = WindowStats{
			N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(), Lo: lo, Hi: hi,
		}
	}
	return res
}

// windowKey derives the content-addressed idempotency key of a fired
// window for one view: the view name, the windowing shape, the item
// sequence and the canonical encoding of the window's annotation map
// (inline evidence included). Everything position-dependent is
// length-prefixed via qcache.Key, and the window sequence number is
// deliberately excluded — a resumed stream renumbers its windows from
// zero, and the SAME window content must map to the SAME journal entry
// regardless. Keyed by MEMBER view name, never the merged plan name, so
// a stream that re-forms with a different view set still replays the
// views it already emitted.
func (e *Enactor) windowKey(view string, j windowJob) string {
	k := qcache.NewKey().
		Str("stream-window").
		Str(view).
		Str(strconv.Itoa(j.decideFrom)).
		Str(strconv.FormatBool(j.partial)).
		Str(strconv.Itoa(len(j.items)))
	for _, it := range j.items {
		k.Str(it.Value())
	}
	k.Map(j.m)
	// Event-time windows and superseding re-fires extend the key with the
	// window identity: shape, event-time bounds, fire generation and the
	// explicit decide set. Bounds keep two same-content windows at
	// different event times distinct; the generation keeps a superseding
	// re-fire distinct from the emission it replaces even when the item
	// content is identical — without it a failover replay could answer the
	// correction from the original's journal entry. Plain count windows
	// omit the block, preserving their pre-event-time keys.
	if j.kind != "" || j.gen > 0 {
		k.Str("window-identity").
			Str(j.kind).
			Str(strconv.FormatInt(j.start.UnixNano(), 10)).
			Str(strconv.FormatInt(j.end.UnixNano(), 10)).
			Str(strconv.Itoa(j.gen)).
			Str(strconv.Itoa(len(j.decide)))
		for _, it := range j.decide {
			k.Str(it.Value())
		}
	}
	return k.Sum()
}

// Decide derives per-item decisions from one enactment's outputs — the
// shared projection both the streaming workers and the batch/stream
// equivalence check use. outputOrder fixes the Outputs ordering (the
// view's declaration order); consolidated supplies class assignments for
// every item, accepted or not.
func Decide(items []evidence.Item, outputs map[string]*evidence.Map, consolidated *evidence.Map, outputOrder []string, window int) []Decision {
	decisions := make([]Decision, 0, len(items))
	for _, it := range items {
		d := Decision{
			Item:    it.Value(),
			Window:  window,
			Outputs: []string{},
		}
		for _, name := range outputOrder {
			if m := outputs[name]; m != nil && m.HasItem(it) {
				d.Outputs = append(d.Outputs, name)
			}
		}
		if consolidated != nil {
			for k, v := range consolidated.Row(it) {
				if t, ok := v.AsTerm(); ok {
					if d.Classes == nil {
						d.Classes = make(map[string]string)
					}
					d.Classes[k.Value()] = t.Value()
				}
			}
		}
		decisions = append(decisions, d)
	}
	return decisions
}
