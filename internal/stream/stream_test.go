package stream_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/stream"
)

// enact feeds n synthetic hits through a fresh enactor and returns the
// window results in emission order.
func enact(t *testing.T, cfg stream.Config, n int) []stream.WindowResult {
	t.Helper()
	e, err := stream.New(compilePaperView(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- stream.Item{ID: hit(i)}
		}
	}()
	var (
		results []stream.WindowResult
		done    = make(chan error, 1)
	)
	go func() { done <- e.Run(context.Background(), in, out) }()
	for r := range out {
		results = append(results, r)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	return results
}

// decidedItems flattens the decisions of all windows, asserting window
// order along the way.
func decidedItems(t *testing.T, results []stream.WindowResult) map[string]stream.Decision {
	t.Helper()
	decided := make(map[string]stream.Decision)
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("window %d emitted at position %d — out of order", r.Seq, i)
		}
		for _, d := range r.Decisions {
			if prev, dup := decided[d.Item]; dup {
				t.Fatalf("item %s decided twice: windows %d and %d", d.Item, prev.Window, d.Window)
			}
			decided[d.Item] = d
		}
	}
	return decided
}

func TestTumblingWindowsDecideEveryItemOnce(t *testing.T) {
	results := enact(t, stream.Config{Window: 5}, 20)
	if len(results) != 4 {
		t.Fatalf("got %d windows, want 4", len(results))
	}
	decided := decidedItems(t, results)
	if len(decided) != 20 {
		t.Fatalf("decided %d items, want 20", len(decided))
	}
	for _, r := range results {
		if r.Size != 5 || len(r.Decisions) != 5 || r.Partial {
			t.Errorf("window %d: size=%d decided=%d partial=%v", r.Seq, r.Size, len(r.Decisions), r.Partial)
		}
	}
	// The §5.1 classifier is collection-scoped: strong (even) items should
	// survive the filter, weak (odd) ones should not — within every window
	// the evidence split is identical, so the thresholds agree.
	for item, d := range decided {
		idx := hitIndex(rdf.IRI(item))
		if idx%2 == 0 && len(d.Outputs) == 0 {
			t.Errorf("strong item %s rejected", item)
		}
		if idx%2 == 1 && len(d.Outputs) != 0 {
			t.Errorf("weak item %s accepted into %v", item, d.Outputs)
		}
		if len(d.Classes) == 0 {
			t.Errorf("item %s has no class assignment", item)
		}
	}
	// Every window reports threshold statistics for the QA score tags.
	for _, r := range results {
		if len(r.Stats) == 0 {
			t.Errorf("window %d has no stats", r.Seq)
			continue
		}
		for key, s := range r.Stats {
			if s.N != 5 || s.Lo > s.Hi {
				t.Errorf("window %d stat %s = %+v", r.Seq, key, s)
			}
		}
	}
}

func TestSlidingWindowsDecideSlideNewest(t *testing.T) {
	// Window 4, slide 2 over 10 items: window 0 decides items 0–3, then
	// each fire decides 2 more in the context of the previous 2.
	results := enact(t, stream.Config{Window: 4, Slide: 2}, 10)
	decided := decidedItems(t, results)
	if len(decided) != 10 {
		t.Fatalf("decided %d items, want 10", len(decided))
	}
	if len(results) != 4 {
		t.Fatalf("got %d windows, want 4", len(results))
	}
	if len(results[0].Decisions) != 4 {
		t.Errorf("first window decided %d, want 4", len(results[0].Decisions))
	}
	for _, r := range results[1:] {
		if len(r.Decisions) != 2 {
			t.Errorf("window %d decided %d, want 2", r.Seq, len(r.Decisions))
		}
		if r.Size != 4 {
			t.Errorf("window %d enacted %d items, want 4 (2 context + 2 new)", r.Seq, r.Size)
		}
	}
	// Decisions arrive in arrival order across windows.
	next := 0
	for _, r := range results {
		for _, d := range r.Decisions {
			if idx := hitIndex(rdf.IRI(d.Item)); idx != next {
				t.Fatalf("decision order broken: got item %d, want %d", idx, next)
			}
			next++
		}
	}
}

func TestPartialFinalWindow(t *testing.T) {
	results := enact(t, stream.Config{Window: 8}, 11)
	if len(results) != 2 {
		t.Fatalf("got %d windows, want 2", len(results))
	}
	last := results[len(results)-1]
	if !last.Partial || last.Size != 3 || len(last.Decisions) != 3 {
		t.Errorf("final window = %+v, want partial of 3", last)
	}
	if len(decidedItems(t, results)) != 11 {
		t.Error("partial flush lost items")
	}

	dropped := enact(t, stream.Config{Window: 8, DropPartial: true}, 11)
	if len(dropped) != 1 {
		t.Fatalf("DropPartial: got %d windows, want 1", len(dropped))
	}
	if len(decidedItems(t, dropped)) != 8 {
		t.Error("DropPartial should decide exactly the complete window")
	}
}

func TestParallelWorkersPreserveWindowOrder(t *testing.T) {
	const n, window = 96, 8
	sequential := enact(t, stream.Config{Window: window, Parallelism: 1}, n)
	parallel := enact(t, stream.Config{Window: window, Parallelism: 8}, n)
	if len(sequential) != len(parallel) {
		t.Fatalf("window counts differ: %d vs %d", len(sequential), len(parallel))
	}
	seqDecided := decidedItems(t, sequential)
	parDecided := decidedItems(t, parallel)
	if len(parDecided) != n {
		t.Fatalf("parallel run decided %d items, want %d", len(parDecided), n)
	}
	// Parallel enactment must be observationally identical to sequential:
	// same windows, same decisions, same order.
	for item, sd := range seqDecided {
		pd, ok := parDecided[item]
		if !ok {
			t.Fatalf("parallel run never decided %s", item)
		}
		if pd.Window != sd.Window || fmt.Sprint(pd.Outputs) != fmt.Sprint(sd.Outputs) {
			t.Errorf("item %s: sequential %+v, parallel %+v", item, sd, pd)
		}
	}
}

func TestCancellationUnwindsPipeline(t *testing.T) {
	e, err := stream.New(compilePaperView(t), stream.Config{Window: 4, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, in, out) }()
	// Feed two windows, then cancel while the producer is mid-stream.
	for i := 0; i < 8; i++ {
		in <- stream.Item{ID: hit(i)}
	}
	cancel()
	for range out {
	}
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not unwind after cancellation")
	}
}

func TestEnactmentErrorCancelsRun(t *testing.T) {
	// An annotator that fails as soon as it sees an item of the second
	// window makes that window's enactment fail.
	failing := ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    identityAnnotator().Provides(),
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, it := range items {
				if hitIndex(it) >= 4 {
					return fmt.Errorf("poison item %v", it)
				}
			}
			return identityAnnotator().Annotate(items, repo)
		},
	}
	c := compileViewXML(t, qvlang.PaperViewXML, failing)
	e, err := stream.New(c, stream.Config{Window: 4, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	go func() {
		defer close(in)
		for i := 0; i < 16; i++ {
			select {
			case in <- stream.Item{ID: hit(i)}:
			case <-time.After(5 * time.Second):
				return
			}
		}
	}()
	var got []stream.WindowResult
	for r := range out {
		got = append(got, r)
	}
	err = <-done
	if err == nil || !strings.Contains(err.Error(), "poison") {
		t.Fatalf("Run = %v, want the poison-item error", err)
	}
	for _, r := range got {
		if r.Seq > 0 {
			t.Errorf("window %d emitted after the failing window", r.Seq)
		}
	}
}

func TestSkipFailedWindowsReportsAndContinues(t *testing.T) {
	// Same poison as TestEnactmentErrorCancelsRun — items 4–7 blow up the
	// annotator — but with SkipFailedWindows the stream survives: the
	// poisoned window is reported failed-and-undecided, its neighbours
	// decide normally, and Run returns clean.
	failing := ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    identityAnnotator().Provides(),
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, it := range items {
				if idx := hitIndex(it); idx >= 4 && idx < 8 {
					return fmt.Errorf("poison item %v", it)
				}
			}
			return identityAnnotator().Annotate(items, repo)
		},
	}
	c := compileViewXML(t, qvlang.PaperViewXML, failing)
	e, err := stream.New(c, stream.Config{Window: 4, SkipFailedWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	go func() {
		defer close(in)
		for i := 0; i < 12; i++ {
			in <- stream.Item{ID: hit(i)}
		}
	}()
	var results []stream.WindowResult
	for r := range out {
		results = append(results, r)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run with SkipFailedWindows = %v, want nil", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d windows, want 3", len(results))
	}
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("window %d emitted at position %d", r.Seq, i)
		}
	}
	bad := results[1]
	if !bad.Failed || !strings.Contains(bad.Error, "poison") || len(bad.Decisions) != 0 || bad.Size != 4 {
		t.Errorf("failed window = %+v, want Failed with the poison error and no decisions", bad)
	}
	for _, i := range []int{0, 2} {
		r := results[i]
		if r.Failed || len(r.Decisions) != 4 {
			t.Errorf("healthy window %d = failed=%v decided=%d, want 4 decisions", r.Seq, r.Failed, len(r.Decisions))
		}
	}
}

func TestDuplicateArrivalRefreshesWithoutGrowth(t *testing.T) {
	e, err := stream.New(compilePaperView(t), stream.Config{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	go func() {
		defer close(in)
		in <- stream.Item{ID: hit(0)}
		in <- stream.Item{ID: hit(1)}
		in <- stream.Item{ID: hit(0)} // duplicate: must not fill a slot
		in <- stream.Item{ID: hit(2)}
		in <- stream.Item{ID: hit(3)}
	}()
	var results []stream.WindowResult
	for r := range out {
		results = append(results, r)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d windows, want 1", len(results))
	}
	if results[0].Size != 4 || len(results[0].Decisions) != 4 {
		t.Errorf("window = %+v, want 4 distinct items", results[0])
	}
}

func TestConfigValidation(t *testing.T) {
	c := compilePaperView(t)
	if _, err := stream.New(nil, stream.Config{Window: 4}); err == nil {
		t.Error("nil compiled view accepted")
	}
	if _, err := stream.New(c, stream.Config{}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := stream.New(c, stream.Config{Window: 4, Slide: 5}); err == nil {
		t.Error("slide > window accepted")
	}
	if _, err := stream.New(c, stream.Config{Window: 4, Slide: -1}); err == nil {
		t.Error("negative slide accepted")
	}
	e, err := stream.New(c, stream.Config{Window: 4, Parallelism: -3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Config(); got.Parallelism != 1 || got.Slide != 4 {
		t.Errorf("normalised config = %+v", got)
	}
	if p := e.Plan(); len(p.QAs) != 3 {
		t.Errorf("plan = %+v", p)
	}
}

// TestInlineEvidenceStats checks the incremental Welford bookkeeping: a
// stream carrying inline numeric evidence reports per-window statistics
// matching an exact recomputation, across window boundaries (add and
// remove paths both exercised).
func TestInlineEvidenceStats(t *testing.T) {
	e, err := stream.New(compilePaperView(t), stream.Config{Window: 3, Slide: 1})
	if err != nil {
		t.Fatal(err)
	}
	key := ontology.Q("inlineScore")
	vals := []float64{2, 9, 4, 25, 1, 16, 8}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	go func() {
		defer close(in)
		for i, v := range vals {
			in <- stream.Item{
				ID:       hit(i),
				Evidence: map[evidence.Key]evidence.Value{key: evidence.Float(v)},
			}
		}
	}()
	var results []stream.WindowResult
	for r := range out {
		results = append(results, r)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var checked int
	for _, r := range results {
		if r.Partial {
			continue
		}
		s, ok := r.Stats[key.Value()]
		if !ok {
			t.Fatalf("window %d lacks inline stats: %v", r.Seq, r.Stats)
		}
		// Exact window contents: with window 3 / slide 1, window w holds
		// vals[w : w+3].
		m := evidence.NewMap()
		for i := r.Seq; i < r.Seq+3; i++ {
			m.AddItem(hit(i))
			m.Set(hit(i), key, evidence.Float(vals[i]))
		}
		want := m.ColumnStats(key)
		if s.N != 3 || !approx(s.Mean, want.Mean) || !approx(s.StdDev, want.StdDev) {
			t.Errorf("window %d stats = %+v, want mean %g stddev %g", r.Seq, s, want.Mean, want.StdDev)
		}
		if !approx(s.Lo, want.Mean-want.StdDev) || !approx(s.Hi, want.Mean+want.StdDev) {
			t.Errorf("window %d thresholds = [%g, %g]", r.Seq, s.Lo, s.Hi)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("checked only %d complete windows", checked)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestBackpressure: with a bounded pipeline and a consumer that refuses to
// read, the producer must block rather than buffer unboundedly.
func TestBackpressure(t *testing.T) {
	e, err := stream.New(compilePaperView(t), stream.Config{Window: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult) // never read until cancel
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, in, out) }()

	var accepted int
	var mu sync.Mutex
	stalled := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case in <- stream.Item{ID: hit(i)}:
				mu.Lock()
				accepted++
				mu.Unlock()
			case <-time.After(500 * time.Millisecond):
				close(stalled)
				return
			}
		}
	}()
	<-stalled
	mu.Lock()
	n := accepted
	mu.Unlock()
	// Capacity of the stalled pipeline: live window + jobs buffer + worker
	// + results buffer + reorder ≈ a few windows, nowhere near unbounded.
	if n > 20 {
		t.Errorf("producer pushed %d items into a stalled pipeline", n)
	}
	cancel()
	for range out {
	}
	<-done
}
