package stream

import (
	"time"

	"qurator/internal/evidence"
)

// windowPolicy is the windowing strategy behind the streaming enactor's
// ingest stage: count-based (windower) or event-time (eventWindower).
// push may fire any number of windows for one arriving item — an
// event-time watermark advance can close several at once, and a late
// arrival can re-fire an already-emitted window — so it returns a slice,
// in emission order. flush fires whatever is still open when the input
// closes.
type windowPolicy interface {
	push(it Item) ([]*windowJob, error)
	flush() []*windowJob
}

// accRebuildEvery is how many fires a count windower lets pass before
// rebuilding its incremental Welford accumulators from the live window.
// Add/Remove cycles accumulate floating-point error without bound on a
// long-lived sliding window; a periodic rebuild (plus an immediate one
// whenever a downdate detects drift, see Accumulator.Tainted) keeps the
// error bounded by one window's worth of arithmetic instead of the
// stream's.
const accRebuildEvery = 256

// defaultLateRetention is how many fired windows a count windower keeps
// around to route re-arrivals of already-decided items as late data.
const defaultLateRetention = 4

// windower implements the count-based windowing policy. It maintains the
// live window as an annotation map (so inline evidence rides along at no
// extra cost) plus one incremental Welford accumulator per numeric inline
// evidence key — O(1) work per arriving or evicted item and value.
//
// Decide-once semantics: every item is decided by exactly one window —
// the first complete window containing it. The first fire decides all
// Window items; each later fire decides only the Slide newest, with the
// Window−Slide older items re-enacted purely as statistical context for
// the collection-scoped QAs. Tumbling windows (Slide == Window) decide
// every item they contain.
//
// Late data: a fired window is retained (content and decided set) for the
// last LateRetention fires. An item that was evicted from the live window
// and re-arrives is routed back to the retained window that decided it —
// a superseding re-fire carrying the refreshed evidence, linked to the
// original emission — instead of being mistaken for a fresh item and
// silently decided twice. Re-arrivals older than the retention horizon
// fall back to fresh-item handling (the horizon is the documented bound).
type windower struct {
	size  int
	slide int
	view  string

	live      *evidence.Map
	undecided int // trailing items not yet decided by any fire
	seq       int
	fires     int

	accs map[evidence.Key]*evidence.Accumulator

	latePolicy LatePolicy
	retention  int
	retained   []*firedWindow
	decidedBy  map[evidence.Item]*firedWindow
}

// firedWindow is the retained snapshot of an emitted count window: enough
// to re-enact it when one of its items re-arrives late.
type firedWindow struct {
	m       *evidence.Map   // window content, refreshed by late arrivals
	items   []evidence.Item // arrival order at fire time
	decided []evidence.Item // the items THIS window decided
	gen     int             // fire generation: 0 original, 1+ superseding
	last    *windowJob      // content of the most recent emission
}

func newWindower(cfg Config, view string) *windower {
	size, slide := cfg.Window, cfg.Slide
	if slide <= 0 {
		slide = size
	}
	retention := cfg.LateRetention
	if retention == 0 {
		retention = defaultLateRetention
	}
	return &windower{
		size:       size,
		slide:      slide,
		view:       view,
		live:       evidence.NewMap(),
		accs:       make(map[evidence.Key]*evidence.Accumulator),
		latePolicy: cfg.LatePolicy,
		retention:  retention,
		decidedBy:  make(map[evidence.Item]*firedWindow),
	}
}

// push adds one item to the live window and returns the jobs it fires. A
// re-arrival of an item already in the live window refreshes its evidence
// without growing the window; a re-arrival of an item already decided by
// a retained window is late data and re-fires that window.
func (w *windower) push(it Item) ([]*windowJob, error) {
	fresh := !w.live.HasItem(it.ID)
	if fresh {
		if fw := w.decidedBy[it.ID]; fw != nil {
			return w.lateArrival(fw, it), nil
		}
	} else {
		// Retract the stale numeric contributions before the row update.
		for k, v := range it.Evidence {
			if v.IsNull() {
				continue // SetRow won't overwrite with a Null
			}
			if old, ok := w.live.Get(it.ID, k).AsFloat(); ok {
				w.acc(k).Remove(old)
			}
		}
	}
	w.live.SetRow(it.ID, it.Evidence)
	for k, v := range it.Evidence {
		if f, ok := v.AsFloat(); ok {
			w.acc(k).Add(f)
		}
	}
	if fresh {
		w.undecided++
	}
	if w.live.Len() >= w.size && w.undecided >= w.slide {
		return []*windowJob{w.fire(false)}, nil
	}
	return nil, nil
}

// flush returns the final partial window, or nil if nothing is pending.
func (w *windower) flush() []*windowJob {
	if w.undecided == 0 {
		return nil
	}
	return []*windowJob{w.fire(true)}
}

// lateArrival routes a re-arrival of an already-decided item: under the
// supersede policy the window that decided it re-fires with the refreshed
// evidence, linked to its previous emission; under the drop policy the
// re-arrival is counted and discarded.
func (w *windower) lateArrival(fw *firedWindow, it Item) []*windowJob {
	if w.latePolicy == LateDrop {
		streamLateItems.With(w.view, "dropped").Inc()
		return nil
	}
	streamLateItems.With(w.view, "superseded").Inc()
	fw.m.SetRow(it.ID, it.Evidence)
	fw.gen++
	j := &windowJob{
		seq:     w.seq,
		items:   fw.items,
		m:       fw.m.Clone(),
		decide:  fw.decided,
		stats:   recomputeStats(fw.m),
		firedAt: time.Now(),
		late:    true,
		gen:     fw.gen,
		prev:    detach(fw.last),
	}
	w.seq++
	fw.last = j
	return []*windowJob{j}
}

// fire snapshots the live window into a job and slides it forward.
func (w *windower) fire(partial bool) *windowJob {
	items := append([]evidence.Item(nil), w.live.Items()...)
	j := &windowJob{
		seq:        w.seq,
		items:      items,
		m:          w.live.Clone(),
		decideFrom: len(items) - w.undecided,
		partial:    partial,
		stats:      w.snapshotStats(),
		firedAt:    time.Now(),
	}
	w.seq++
	w.undecided = 0
	if !partial {
		w.retain(j)
	}
	// Evict the oldest slide-worth of items so the next window overlaps
	// the current one by Window−Slide items (none, for tumbling windows).
	evict := w.slide
	if partial || evict > w.live.Len() {
		evict = w.live.Len()
	}
	// items is already an arrival-ordered copy of the window, so downdate
	// the accumulators from its prefix (the old loop called Items() — a
	// full copy — once per evicted item) and drop the prefix in a single
	// ordered eviction, keeping a fire O(window) instead of O(window²).
	for _, old := range items[:evict] {
		for k, acc := range w.accs {
			if f, ok := w.live.Get(old, k).AsFloat(); ok {
				acc.Remove(f)
			}
		}
	}
	w.live.RemoveFirst(evict)
	// Evidence keys that stopped appearing would otherwise pin their
	// accumulators forever — a key-churn stream (every item a new key)
	// grew this map without bound.
	for k, acc := range w.accs {
		if acc.N() == 0 {
			delete(w.accs, k)
		}
	}
	w.fires++
	if w.fires%accRebuildEvery == 0 || w.anyTainted() {
		w.rebuildAccs()
	}
	return j
}

// retain remembers a fired window for late-data routing and expires the
// oldest beyond the retention horizon.
func (w *windower) retain(j *windowJob) {
	fw := &firedWindow{
		m:       j.m.Clone(),
		items:   j.items,
		decided: j.items[j.decideFrom:],
		last:    detach(j),
	}
	for _, d := range fw.decided {
		w.decidedBy[d] = fw
	}
	w.retained = append(w.retained, fw)
	for len(w.retained) > w.retention {
		old := w.retained[0]
		w.retained = w.retained[1:]
		for _, d := range old.decided {
			if w.decidedBy[d] == old {
				delete(w.decidedBy, d)
			}
		}
	}
}

// detach shallow-copies a job with its supersession link cleared, so
// retained predecessors never form unbounded chains.
func detach(j *windowJob) *windowJob {
	if j == nil {
		return nil
	}
	c := *j
	c.prev = nil
	return &c
}

func (w *windower) acc(k evidence.Key) *evidence.Accumulator {
	a := w.accs[k]
	if a == nil {
		a = &evidence.Accumulator{}
		w.accs[k] = a
	}
	return a
}

func (w *windower) anyTainted() bool {
	for _, acc := range w.accs {
		if acc.Tainted() {
			return true
		}
	}
	return false
}

// rebuildAccs re-derives every accumulator from the live window, resetting
// the floating-point drift that unbounded Add/Remove cycles accumulate.
func (w *windower) rebuildAccs() {
	w.accs = make(map[evidence.Key]*evidence.Accumulator, len(w.accs))
	for _, it := range w.live.Items() {
		for k, v := range w.live.Row(it) {
			if f, ok := v.AsFloat(); ok {
				w.acc(k).Add(f)
			}
		}
	}
}

// snapshotStats freezes the inline-evidence accumulators into the job.
func (w *windower) snapshotStats() map[string]WindowStats {
	var out map[string]WindowStats
	for k, acc := range w.accs {
		if acc.N() == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]WindowStats, len(w.accs))
		}
		lo, hi := acc.Thresholds()
		out[k.Value()] = WindowStats{
			N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(), Lo: lo, Hi: hi,
		}
	}
	return out
}

// recomputeStats derives window statistics by a full scan of the window
// map — the re-fire path, where no incremental accumulators are live.
func recomputeStats(m *evidence.Map) map[string]WindowStats {
	var out map[string]WindowStats
	for _, k := range m.Keys() {
		st := m.ColumnStats(k)
		if st.N == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]WindowStats)
		}
		out[k.Value()] = WindowStats{
			N: st.N, Mean: st.Mean, StdDev: st.StdDev,
			Lo: st.Mean - st.StdDev, Hi: st.Mean + st.StdDev,
		}
	}
	return out
}
