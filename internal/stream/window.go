package stream

import (
	"time"

	"qurator/internal/evidence"
)

// windower implements the count-based windowing policy. It maintains the
// live window as an annotation map (so inline evidence rides along at no
// extra cost) plus one incremental Welford accumulator per numeric inline
// evidence key — O(1) work per arriving or evicted item and value.
//
// Decide-once semantics: every item is decided by exactly one window —
// the first complete window containing it. The first fire decides all
// Window items; each later fire decides only the Slide newest, with the
// Window−Slide older items re-enacted purely as statistical context for
// the collection-scoped QAs. Tumbling windows (Slide == Window) decide
// every item they contain.
type windower struct {
	size  int
	slide int

	live      *evidence.Map
	undecided int // trailing items not yet decided by any fire
	seq       int

	accs map[evidence.Key]*evidence.Accumulator
}

func newWindower(size, slide int) *windower {
	return &windower{
		size:  size,
		slide: slide,
		live:  evidence.NewMap(),
		accs:  make(map[evidence.Key]*evidence.Accumulator),
	}
}

// push adds one item to the live window and returns a job if the window
// fires. A re-arrival of an item already in the window refreshes its
// evidence without growing the window.
func (w *windower) push(it Item) *windowJob {
	fresh := !w.live.HasItem(it.ID)
	if !fresh {
		// Retract the stale numeric contributions before the row update.
		for k, v := range it.Evidence {
			if v.IsNull() {
				continue // SetRow won't overwrite with a Null
			}
			if old, ok := w.live.Get(it.ID, k).AsFloat(); ok {
				w.acc(k).Remove(old)
			}
		}
	}
	w.live.SetRow(it.ID, it.Evidence)
	for k, v := range it.Evidence {
		if f, ok := v.AsFloat(); ok {
			w.acc(k).Add(f)
		}
	}
	if fresh {
		w.undecided++
	}
	if w.live.Len() >= w.size && w.undecided >= w.slide {
		return w.fire(false)
	}
	return nil
}

// flush returns the final partial window, or nil if nothing is pending.
func (w *windower) flush() *windowJob {
	if w.undecided == 0 {
		return nil
	}
	return w.fire(true)
}

// fire snapshots the live window into a job and slides it forward.
func (w *windower) fire(partial bool) *windowJob {
	items := append([]evidence.Item(nil), w.live.Items()...)
	j := &windowJob{
		seq:        w.seq,
		items:      items,
		m:          w.live.Clone(),
		decideFrom: len(items) - w.undecided,
		partial:    partial,
		stats:      w.snapshotStats(),
		firedAt:    time.Now(),
	}
	w.seq++
	w.undecided = 0
	// Evict the oldest slide-worth of items so the next window overlaps
	// the current one by Window−Slide items (none, for tumbling windows).
	evict := w.slide
	if partial || evict > w.live.Len() {
		evict = w.live.Len()
	}
	// items is already an arrival-ordered copy of the window, so downdate
	// the accumulators from its prefix (the old loop called Items() — a
	// full copy — once per evicted item) and drop the prefix in a single
	// ordered eviction, keeping a fire O(window) instead of O(window²).
	for _, old := range items[:evict] {
		for k, acc := range w.accs {
			if f, ok := w.live.Get(old, k).AsFloat(); ok {
				acc.Remove(f)
			}
		}
	}
	w.live.RemoveFirst(evict)
	return j
}

func (w *windower) acc(k evidence.Key) *evidence.Accumulator {
	a := w.accs[k]
	if a == nil {
		a = &evidence.Accumulator{}
		w.accs[k] = a
	}
	return a
}

// snapshotStats freezes the inline-evidence accumulators into the job.
func (w *windower) snapshotStats() map[string]WindowStats {
	var out map[string]WindowStats
	for k, acc := range w.accs {
		if acc.N() == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]WindowStats, len(w.accs))
		}
		lo, hi := acc.Thresholds()
		out[k.Value()] = WindowStats{
			N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(), Lo: lo, Hi: hi,
		}
	}
	return out
}
