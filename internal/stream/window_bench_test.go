package stream

import (
	"fmt"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

// BenchmarkWindowEviction is the regression benchmark for the quadratic
// fire: eviction used to call w.live.Items() (a full copy of the window)
// once per evicted item, making each fire O(window²). A fire is now
// O(window), reusing the snapshot it already took.
func BenchmarkWindowEviction(b *testing.B) {
	key := evidence.Key(rdf.IRI("urn:q:HitRatio"))
	for _, size := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("window=%d", size), func(b *testing.B) {
			items := make([]Item, 2*size)
			for i := range items {
				items[i] = Item{
					ID:       evidence.Item(rdf.IRI(fmt.Sprintf("urn:item:%d", i))),
					Evidence: map[evidence.Key]evidence.Value{key: evidence.Float(float64(i))},
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				w := newWindower(Config{Window: size, Slide: size}, "bench")
				fires := 0
				for _, it := range items {
					js, _ := w.push(it)
					for _, j := range js {
						fires++
						if len(j.items) != size {
							b.Fatalf("fire carried %d items, want %d", len(j.items), size)
						}
					}
				}
				if fires != 2 {
					b.Fatalf("fires = %d, want 2", fires)
				}
				if w.live.Len() != 0 {
					b.Fatalf("live window not emptied: %d", w.live.Len())
				}
			}
		})
	}
}

// TestFireEvictsOldestSlide pins the eviction semantics the benchmark
// relies on: after a sliding fire, the oldest Slide items are gone and
// the accumulator reflects only the survivors.
func TestFireEvictsOldestSlide(t *testing.T) {
	key := evidence.Key(rdf.IRI("urn:q:HitRatio"))
	w := newWindower(Config{Window: 4, Slide: 2}, "test")
	var jobs []*windowJob
	for i := 0; i < 6; i++ {
		it := Item{
			ID:       evidence.Item(rdf.IRI(fmt.Sprintf("urn:item:%d", i))),
			Evidence: map[evidence.Key]evidence.Value{key: evidence.Float(float64(i))},
		}
		js, _ := w.push(it)
		jobs = append(jobs, js...)
	}
	if len(jobs) != 2 {
		t.Fatalf("fires = %d, want 2", len(jobs))
	}
	// After the second fire (window items 2..5, slide 2) items 2 and 3
	// are evicted; 4 and 5 remain as context.
	if w.live.Len() != 2 {
		t.Fatalf("live window = %d items, want 2", w.live.Len())
	}
	for _, gone := range []int{0, 1, 2, 3} {
		if w.live.HasItem(evidence.Item(rdf.IRI(fmt.Sprintf("urn:item:%d", gone)))) {
			t.Errorf("item %d should have been evicted", gone)
		}
	}
	acc := w.accs[key]
	if acc.N() != 2 {
		t.Fatalf("accumulator N = %d, want 2 (survivors only)", acc.N())
	}
	if got, want := acc.Mean(), (4.0+5.0)/2; got != want {
		t.Errorf("accumulator mean = %v, want %v", got, want)
	}
}
