package stream

import (
	"fmt"
	"math"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

func wbItem(i int, key evidence.Key, v float64) Item {
	return Item{
		ID:       rdf.IRI(fmt.Sprintf("urn:item:%d", i)),
		Evidence: map[evidence.Key]evidence.Value{key: evidence.Float(v)},
	}
}

// TestAccRebuildBoundsFloatDrift is the satellite-1 regression: a
// long-lived sliding window performs one Welford Add and one Remove per
// item, and the floating-point error of those cycles used to accumulate
// without bound — after enough slides the reported stddev of a
// large-offset series drifted visibly from the true value. The periodic
// rebuild (plus the taint-triggered one) keeps the accumulator within
// numerical noise of an exact recomputation even after a million slides.
func TestAccRebuildBoundsFloatDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-slide soak")
	}
	key := evidence.Key(rdf.IRI("urn:q:Offset"))
	w := newWindower(Config{Window: 8, Slide: 1}, "soak")
	const n = 1_000_000
	// Large common offset + small signal: the catastrophic-cancellation
	// regime where incremental variance loses precision fastest.
	val := func(i int) float64 { return 1e9 + float64(i%17) }
	for i := 0; i < n; i++ {
		if _, err := w.push(wbItem(i, key, val(i))); err != nil {
			t.Fatal(err)
		}
	}
	acc := w.accs[key]
	if acc == nil {
		t.Fatal("accumulator vanished")
	}
	exact := w.live.ColumnStats(key)
	if acc.N() != exact.N {
		t.Fatalf("acc N = %d, want %d", acc.N(), exact.N)
	}
	if d := math.Abs(acc.Mean() - exact.Mean); d > 1e-3 {
		t.Errorf("mean drifted by %g after %d slides (acc %v, exact %v)", d, n, acc.Mean(), exact.Mean)
	}
	if d := math.Abs(acc.StdDev() - exact.StdDev); d > 1e-3 {
		t.Errorf("stddev drifted by %g after %d slides (acc %v, exact %v)", d, n, acc.StdDev(), exact.StdDev)
	}
}

// TestAccsMapBoundedUnderKeyChurn is the satellite-2 regression: a
// stream where every item carries a fresh evidence key used to grow the
// windower's accumulator map one entry per key, forever — the zero-N
// accumulators of evicted keys were never dropped. The map must stay
// bounded by the live window, not the stream history.
func TestAccsMapBoundedUnderKeyChurn(t *testing.T) {
	w := newWindower(Config{Window: 4, Slide: 4}, "churn")
	const n = 1000
	for i := 0; i < n; i++ {
		key := evidence.Key(rdf.IRI(fmt.Sprintf("urn:q:churn:%d", i)))
		if _, err := w.push(wbItem(i, key, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The live window holds at most Window items, each with one key; the
	// accumulator map must not exceed that (modulo the not-yet-fired tail).
	if got := len(w.accs); got > 8 {
		t.Fatalf("accs map grew to %d entries under key churn, want ≤ 8", got)
	}
}

// TestEvictedReArrivalRoutedAsLate is the satellite-3 regression: an
// item evicted from the live window that re-arrives used to be counted
// fresh — filling a slot in the next window and getting silently decided
// a second time. It must instead be routed to the retained window that
// decided it, as a superseding late re-fire.
func TestEvictedReArrivalRoutedAsLate(t *testing.T) {
	key := evidence.Key(rdf.IRI("urn:q:HitRatio"))
	w := newWindower(Config{Window: 2, Slide: 2}, "late")
	var fired []*windowJob
	for i := 0; i < 2; i++ {
		js, err := w.push(wbItem(i, key, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		fired = append(fired, js...)
	}
	if len(fired) != 1 || w.live.Len() != 0 {
		t.Fatalf("setup: fires=%d live=%d, want 1 fire and an empty live window", len(fired), w.live.Len())
	}

	// Item 0 was decided by the fired window and evicted; its re-arrival
	// is late data, not a fresh item.
	js, err := w.push(wbItem(0, key, 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 1 {
		t.Fatalf("re-arrival fired %d jobs, want 1 superseding re-fire", len(js))
	}
	re := js[0]
	if !re.late || re.gen != 1 || re.prev == nil {
		t.Fatalf("re-fire = late=%v gen=%d prev=%v, want a gen-1 superseding job", re.late, re.gen, re.prev)
	}
	if got := re.decided(); len(got) != 2 {
		t.Fatalf("re-fire decides %d items, want the original 2", len(got))
	}
	if v, ok := re.m.Get(rdf.IRI("urn:item:0"), key).AsFloat(); !ok || v != 42 {
		t.Errorf("re-fire content lacks the refreshed evidence (got %v, %v)", v, ok)
	}
	if w.live.Len() != 0 {
		t.Error("late re-arrival leaked into the live window")
	}
	// The journal key of the re-fire must differ from the original even
	// for identical content — the generation is part of the identity.
	e := &Enactor{views: []streamView{{name: "late"}}}
	if k0, k1 := e.windowKey("late", *fired[0]), e.windowKey("late", *re); k0 == k1 {
		t.Error("superseding re-fire maps to the original journal key")
	}

	// Under the drop policy the re-arrival is discarded instead.
	wd := newWindower(Config{Window: 2, Slide: 2, LatePolicy: LateDrop}, "latedrop")
	for i := 0; i < 2; i++ {
		if _, err := wd.push(wbItem(i, key, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	js, err = wd.push(wbItem(0, key, 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 0 || wd.live.Len() != 0 {
		t.Fatalf("LateDrop: jobs=%d live=%d, want the re-arrival discarded", len(js), wd.live.Len())
	}
}

// TestLateRetentionHorizonExpires pins the documented bound: re-arrivals
// older than the LateRetention horizon fall back to fresh-item handling.
func TestLateRetentionHorizonExpires(t *testing.T) {
	key := evidence.Key(rdf.IRI("urn:q:HitRatio"))
	w := newWindower(Config{Window: 2, Slide: 2, LateRetention: 1}, "horizon")
	for i := 0; i < 4; i++ { // two fires; retention 1 keeps only the second
		if _, err := w.push(wbItem(i, key, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(w.retained) != 1 {
		t.Fatalf("retained %d windows, want 1", len(w.retained))
	}
	// Item 0's window expired from retention: its re-arrival is fresh.
	js, err := w.push(wbItem(0, key, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 0 {
		t.Fatalf("expired re-arrival fired %d jobs, want none (fresh handling)", len(js))
	}
	if w.live.Len() != 1 {
		t.Fatalf("fresh-handled re-arrival missing from the live window (len %d)", w.live.Len())
	}
	// Item 2's window is still retained: its re-arrival is late.
	js, err = w.push(wbItem(2, key, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 1 || !js[0].late {
		t.Fatalf("retained re-arrival = %d jobs, want 1 late re-fire", len(js))
	}
}
