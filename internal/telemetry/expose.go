package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, then one sample line per
// series, families in registration order, series in first-use order.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.writeProm(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) writeProm(w *bufio.Writer) error {
	f.mu.RLock()
	snap := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		snap = append(snap, f.series[key])
	}
	f.mu.RUnlock()
	if len(snap) == 0 {
		return nil
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range snap {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.labelValues, "", ""), s.c.Value())
		case typeGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.g.Value()))
		case typeHistogram:
			cum := uint64(0)
			for i, bound := range s.h.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelValues, "le", formatFloat(bound)), cum)
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), formatFloat(s.h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), s.h.Count())
		}
	}
	return nil
}

// labelString renders {k="v",...}, with an optional extra pair (the
// histogram "le" label), or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Handler serves the registry as GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "telemetry: GET /metrics", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteProm(w)
	})
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// SeriesSnapshot is one labelled series' frozen state.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
}

// MetricSnapshot is one family's frozen state.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot freezes every family for JSON serialisation (qvrun
// -telemetry, BENCH records). Families are sorted by name, series by
// label values, so snapshots diff cleanly.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.RLock()
		ms := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, key := range f.order {
			s := f.series[key]
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					ss.Labels[l] = s.labelValues[i]
				}
			}
			switch f.typ {
			case typeCounter:
				ss.Value = float64(s.c.Value())
			case typeGauge:
				ss.Value = s.g.Value()
			case typeHistogram:
				ss.Count = s.h.Count()
				ss.Sum = s.h.Sum()
				ss.Value = ss.Sum
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: bound, Count: cum})
				}
			}
			ms.Series = append(ms.Series, ss)
		}
		f.mu.RUnlock()
		sort.Slice(ms.Series, func(a, b int) bool {
			return labelKey(seriesValues(ms.Series[a], f.labels)) < labelKey(seriesValues(ms.Series[b], f.labels))
		})
		out = append(out, ms)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

func seriesValues(s SeriesSnapshot, labels []string) []string {
	values := make([]string, len(labels))
	for i, l := range labels {
		values[i] = s.Labels[l]
	}
	return values
}
