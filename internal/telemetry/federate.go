package telemetry

import (
	"fmt"
	"sort"
)

// NodeExposition pairs one fleet member's parsed /metrics document with
// the node name it was scraped from.
type NodeExposition struct {
	Node string
	Exp  *Exposition
}

// Federate merges per-node metric expositions into one fleet-wide
// document — the body of GET /cluster/metrics:
//
//   - counters and histograms are summed across nodes per sample
//     identity (name + label set, le included), so a federated counter
//     equals the sum of the per-node values;
//   - gauges, summaries and untyped samples are re-exported once per
//     node with a prepended node="<name>" label — summing a gauge is
//     meaningless, but per-node values side by side are not;
//   - histogram bucket series are re-emitted in ascending le order per
//     series so the merged document still validates even when nodes
//     expose different bucket layouts.
//
// Families keep their first-appearance order; HELP text is the first
// non-empty one seen. Two nodes declaring the same family with different
// TYPEs is an error — that is a fleet running incompatible binaries, and
// silently merging would produce numbers nobody can interpret.
// Timestamps are dropped: a merged sample has no single scrape time.
func Federate(nodes []NodeExposition) (*Exposition, error) {
	out := &Exposition{}
	fams := make(map[string]*MetricFamily)
	sums := make(map[string]map[string]int) // family → sample identity → index in Samples
	hists := make(map[string]*histMerge)
	for _, n := range nodes {
		if n.Exp == nil {
			continue
		}
		for _, src := range n.Exp.Families {
			f, ok := fams[src.Name]
			if !ok {
				f = &MetricFamily{Name: src.Name, Type: src.Type, Help: src.Help}
				fams[src.Name] = f
				out.Families = append(out.Families, f)
			}
			if f.Type == "" {
				f.Type = src.Type
			} else if src.Type != "" && src.Type != f.Type {
				return nil, fmt.Errorf("federate: family %s is a %s on node %q but a %s elsewhere",
					src.Name, src.Type, n.Node, f.Type)
			}
			if f.Help == "" {
				f.Help = src.Help
			}
			switch f.Type {
			case typeCounter:
				mergeSum(f, sums, src.Samples)
			case typeHistogram:
				h := hists[f.Name]
				if h == nil {
					h = newHistMerge()
					hists[f.Name] = h
				}
				if err := h.add(f.Name, src.Samples); err != nil {
					return nil, fmt.Errorf("federate: node %q: %w", n.Node, err)
				}
			default: // gauge, summary, untyped
				mergePerNode(f, sums, n.Node, src.Samples)
			}
		}
	}
	for name, h := range hists {
		fams[name].Samples = h.render(name)
	}
	return out, nil
}

// mergeSum folds samples into the family by identity, summing values.
func mergeSum(f *MetricFamily, sums map[string]map[string]int, samples []Sample) {
	byID := sums[f.Name]
	if byID == nil {
		byID = make(map[string]int)
		sums[f.Name] = byID
	}
	for _, s := range samples {
		id := s.Name + "\xff" + sortedLabelKey(s.Labels, "")
		if i, ok := byID[id]; ok {
			f.Samples[i].Value += s.Value
			continue
		}
		s.Timestamp = ""
		f.Samples = append(f.Samples, s)
		byID[id] = len(f.Samples) - 1
	}
}

// mergePerNode re-exports each sample with a node label prepended (kept
// as-is when the source already carries one); two nodes colliding on the
// same labelled identity keep the first.
func mergePerNode(f *MetricFamily, sums map[string]map[string]int, node string, samples []Sample) {
	byID := sums[f.Name]
	if byID == nil {
		byID = make(map[string]int)
		sums[f.Name] = byID
	}
	for _, s := range samples {
		if _, has := s.Label("node"); !has && node != "" {
			s.Labels = append([]Label{{Name: "node", Value: node}}, s.Labels...)
		}
		id := s.Name + "\xff" + sortedLabelKey(s.Labels, "")
		if _, ok := byID[id]; ok {
			continue
		}
		s.Timestamp = ""
		f.Samples = append(f.Samples, s)
		byID[id] = len(f.Samples) - 1
	}
}

// histMerge accumulates one histogram family across nodes: per series
// (labels modulo le) the summed bucket counts keyed by bound, plus the
// summed _sum and _count.
type histMerge struct {
	order  []string // series keys, first appearance
	series map[string]*histSeries
}

type histSeries struct {
	labels  []Label // from first appearance, minus le
	buckets map[float64]float64
	rawLE   map[float64]string // bound → raw le spelling ("+Inf", "0.5")
	sum     float64
	count   float64
}

func newHistMerge() *histMerge {
	return &histMerge{series: make(map[string]*histSeries)}
}

func (h *histMerge) get(labels []Label) *histSeries {
	key := sortedLabelKey(labels, "le")
	s, ok := h.series[key]
	if !ok {
		kept := make([]Label, 0, len(labels))
		for _, l := range labels {
			if l.Name != "le" {
				kept = append(kept, l)
			}
		}
		s = &histSeries{
			labels:  kept,
			buckets: make(map[float64]float64),
			rawLE:   make(map[float64]string),
		}
		h.series[key] = s
		h.order = append(h.order, key)
	}
	return s
}

func (h *histMerge) add(fam string, samples []Sample) error {
	for _, smp := range samples {
		s := h.get(smp.Labels)
		switch smp.Name {
		case fam + "_bucket":
			le, _ := smp.Label("le")
			bound, err := parsePromFloat(le)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam, le)
			}
			s.buckets[bound] += smp.Value
			s.rawLE[bound] = le
		case fam + "_sum":
			s.sum += smp.Value
		case fam + "_count":
			s.count += smp.Value
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", fam, smp.Name)
		}
	}
	return nil
}

// render emits each series' buckets in ascending le order followed by
// _sum and _count — always a valid histogram block.
func (h *histMerge) render(fam string) []Sample {
	var out []Sample
	for _, key := range h.order {
		s := h.series[key]
		bounds := make([]float64, 0, len(s.buckets))
		for b := range s.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		for _, b := range bounds {
			labels := append(append([]Label(nil), s.labels...), Label{Name: "le", Value: s.rawLE[b]})
			out = append(out, Sample{Name: fam + "_bucket", Labels: labels, Value: s.buckets[b]})
		}
		base := append([]Label(nil), s.labels...)
		out = append(out, Sample{Name: fam + "_sum", Labels: base, Value: s.sum})
		out = append(out, Sample{Name: fam + "_count", Labels: base, Value: s.count})
	}
	return out
}
