package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// renderAndParse round-trips a registry through its text exposition.
func renderAndParse(t *testing.T, r *Registry) *Exposition {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("registry output does not parse: %v", err)
	}
	return exp
}

// TestExpositionRoundTrip: parse∘Write is the identity on WriteProm
// output — the property /cluster/metrics federation rests on (anything
// the structured form failed to capture would be silently dropped from
// the merged document).
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_plain_total", "A plain counter.").Add(42)
	r.CounterVec("rt_labelled_total", "With labels.", "op", "status").With("read", "ok").Add(7)
	r.CounterVec("rt_labelled_total", "With labels.", "op", "status").With("write", "err").Add(1)
	r.Gauge("rt_depth", "A gauge.").Set(3.25)
	r.GaugeVec("rt_temp", `Escapes: backslash \ quote " newline.`, "host").
		With(`we"ird\host` + "\n").Set(-1.5)
	r.Histogram("rt_latency_seconds", "A histogram.", []float64{0.1, 1}).Observe(0.5)
	r.Histogram("rt_latency_seconds", "A histogram.", []float64{0.1, 1}).Observe(2)
	r.Gauge("rt_nan", "Odd values.").Set(math.Inf(1))

	var first bytes.Buffer
	if err := r.WriteProm(&first); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var second bytes.Buffer
	if err := exp.Write(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("round trip is not the identity:\n--- rendered ---\n%s\n--- re-rendered ---\n%s",
			first.String(), second.String())
	}
	// And the re-rendered form must itself still validate and re-parse.
	if err := ValidateExposition(bytes.NewReader(second.Bytes())); err != nil {
		t.Fatalf("re-rendered exposition invalid: %v", err)
	}
}

// TestDefaultRegistryRoundTrip runs the same identity check over the
// live process registry, which the whole codebase has populated by the
// time tests run — the widest input we can get for free.
func TestDefaultRegistryRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := Default.WriteProm(&first); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("Default registry output does not parse: %v", err)
	}
	var second bytes.Buffer
	if err := exp.Write(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("Default registry round trip is not the identity")
	}
}

func TestParsedStructure(t *testing.T) {
	doc := `# HELP acme_requests_total Requests with a \\ and a \n inside.
# TYPE acme_requests_total counter
acme_requests_total{method="get",code="200"} 7 1712345678901
acme_untyped 3
`
	exp, err := ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	f := exp.Family("acme_requests_total")
	if f == nil || f.Type != "counter" {
		t.Fatalf("family = %+v; want a counter", f)
	}
	if want := "Requests with a \\ and a \n inside."; f.Help != want {
		t.Fatalf("help %q; want %q", f.Help, want)
	}
	if len(f.Samples) != 1 {
		t.Fatalf("samples = %d; want 1", len(f.Samples))
	}
	s := f.Samples[0]
	if s.Value != 7 || s.Timestamp != "1712345678901" {
		t.Fatalf("sample = %+v", s)
	}
	if len(s.Labels) != 2 || s.Labels[0] != (Label{"method", "get"}) || s.Labels[1] != (Label{"code", "200"}) {
		t.Fatalf("labels (order must be preserved) = %+v", s.Labels)
	}
	if u := exp.Family("acme_untyped"); u == nil || u.Type != "" || len(u.Samples) != 1 {
		t.Fatalf("untyped family = %+v", u)
	}
}

// TestFederateSums is the merge property test: for counters and
// histograms the federated value of every series equals the sum of the
// per-node values, and the merged document is itself a valid exposition.
func TestFederateSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nodes = 4
	buckets := []float64{0.1, 1, 5}

	var exps []NodeExposition
	wantCounter := make(map[string]uint64) // label value → summed count
	var wantObs []float64
	wantGauge := make(map[string]float64) // node → gauge value
	for i := 0; i < nodes; i++ {
		r := NewRegistry()
		ops := r.CounterVec("fed_ops_total", "Ops.", "op")
		for _, op := range []string{"read", "write"} {
			v := uint64(rng.Intn(1000))
			// Not every node exposes every series.
			if op == "write" && i%2 == 1 {
				continue
			}
			ops.With(op).Add(v)
			wantCounter[op] += v
		}
		h := r.Histogram("fed_latency_seconds", "Latency.", buckets)
		for j := 0; j < 5+rng.Intn(5); j++ {
			v := rng.Float64() * 6
			h.Observe(v)
			wantObs = append(wantObs, v)
		}
		node := fmt.Sprintf("n%d", i)
		g := r.Gauge("fed_depth", "Depth.")
		gv := rng.Float64() * 100
		g.Set(gv)
		wantGauge[node] = gv
		exps = append(exps, NodeExposition{Node: node, Exp: renderAndParse(t, r)})
	}

	merged, err := Federate(exps)
	if err != nil {
		t.Fatal(err)
	}

	// The merged document is a valid exposition.
	var out bytes.Buffer
	if err := merged.Write(&out); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, out.String())
	}

	// Counters: federated == sum of per-node.
	cf := merged.Family("fed_ops_total")
	if cf == nil {
		t.Fatal("fed_ops_total missing from merge")
	}
	for _, s := range cf.Samples {
		op, _ := s.Label("op")
		if uint64(s.Value) != wantCounter[op] {
			t.Fatalf("federated fed_ops_total{op=%q} = %v; want %d", op, s.Value, wantCounter[op])
		}
		delete(wantCounter, op)
	}
	if len(wantCounter) != 0 {
		t.Fatalf("series missing from merge: %v", wantCounter)
	}

	// Histogram: every bucket is the sum of the per-node cumulative
	// counts, _count is the total observation count, _sum their sum.
	hf := merged.Family("fed_latency_seconds")
	if hf == nil {
		t.Fatal("fed_latency_seconds missing from merge")
	}
	countPer := func(le float64) (n int) {
		for _, v := range wantObs {
			if v <= le {
				n++
			}
		}
		return n
	}
	var sawBuckets, sawCount, sawSum int
	for _, s := range hf.Samples {
		switch s.Name {
		case "fed_latency_seconds_bucket":
			sawBuckets++
			leRaw, _ := s.Label("le")
			le, err := parsePromFloat(leRaw)
			if err != nil {
				t.Fatal(err)
			}
			if int(s.Value) != countPer(le) {
				t.Fatalf("bucket le=%s = %v; want %d", leRaw, s.Value, countPer(le))
			}
		case "fed_latency_seconds_count":
			sawCount++
			if int(s.Value) != len(wantObs) {
				t.Fatalf("_count = %v; want %d", s.Value, len(wantObs))
			}
		case "fed_latency_seconds_sum":
			sawSum++
			var want float64
			for _, v := range wantObs {
				want += v
			}
			if math.Abs(s.Value-want) > 1e-6 {
				t.Fatalf("_sum = %v; want %v", s.Value, want)
			}
		}
	}
	if sawBuckets != len(buckets)+1 || sawCount != 1 || sawSum != 1 {
		t.Fatalf("histogram shape: %d buckets, %d count, %d sum", sawBuckets, sawCount, sawSum)
	}

	// Gauges: one sample per node, node label prepended.
	gf := merged.Family("fed_depth")
	if gf == nil || len(gf.Samples) != nodes {
		t.Fatalf("fed_depth = %+v; want %d per-node samples", gf, nodes)
	}
	for _, s := range gf.Samples {
		node, ok := s.Label("node")
		if !ok {
			t.Fatalf("gauge sample lacks node label: %+v", s)
		}
		if s.Value != wantGauge[node] {
			t.Fatalf("fed_depth{node=%q} = %v; want %v", node, s.Value, wantGauge[node])
		}
	}
}

func TestFederateTypeConflict(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("conflict_metric", "As a counter.").Inc()
	r2.Gauge("conflict_metric", "As a gauge.").Set(1)
	_, err := Federate([]NodeExposition{
		{Node: "a", Exp: renderAndParse(t, r1)},
		{Node: "b", Exp: renderAndParse(t, r2)},
	})
	if err == nil || !strings.Contains(err.Error(), "conflict_metric") {
		t.Fatalf("Federate over conflicting types = %v; want a named error", err)
	}
}

func TestFederateGaugeNodeCollision(t *testing.T) {
	// Two in-process nodes sharing one registry both expose a sample that
	// already carries a node label — keep-first, never a duplicate.
	r := NewRegistry()
	r.GaugeVec("fed_shared", "Shared.", "node").With("n1").Set(5)
	exp := renderAndParse(t, r)
	merged, err := Federate([]NodeExposition{{Node: "n1", Exp: exp}, {Node: "n2", Exp: exp}})
	if err != nil {
		t.Fatal(err)
	}
	f := merged.Family("fed_shared")
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 5 {
		t.Fatalf("shared gauge merged to %+v; want one kept-first sample", f)
	}
}
