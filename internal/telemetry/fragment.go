package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TraceFragment is one node's share of a distributed trace: the finished
// spans this process recorded under a trace ID. A forwarded enactment
// leaves a fragment on every node it touched; assembling the full tree
// means collecting the fragments from the live ring members.
type TraceFragment struct {
	TraceID string `json:"traceID"`
	// Node names the process that recorded these spans.
	Node string `json:"node,omitempty"`
	// DroppedSpans counts spans this node discarded past its per-trace cap.
	DroppedSpans int `json:"droppedSpans,omitempty"`
	// Complete reports whether this node recorded the trace's root span.
	Complete bool       `json:"complete"`
	Spans    []SpanData `json:"spans"`
}

// Fragment returns the recorder's raw spans for one trace, ready to
// serve to an assembling peer.
func (r *Recorder) Fragment(id string) (TraceFragment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.traces[id]
	if !ok {
		return TraceFragment{}, false
	}
	return TraceFragment{
		TraceID:      id,
		DroppedSpans: e.dropped,
		Complete:     e.done,
		Spans:        append([]SpanData(nil), e.spans...),
	}, true
}

// TraceIDs returns the retained trace IDs, newest first.
func (r *Recorder) TraceIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.order[i])
	}
	return out
}

// FragmentsHandler serves a node's span fragments for distributed trace
// assembly, mounted at /debug/traces/:
//
//	GET /debug/traces/       → {"node":..., "traces":[ids...]} (newest first)
//	GET /debug/traces/<id>   → the TraceFragment (404 if unknown)
//
// node names this process in the fragments it serves (the fleet node ID
// under quratord -cluster).
func FragmentsHandler(rec *Recorder, node string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "telemetry: GET only", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			_ = enc.Encode(struct {
				Node   string   `json:"node"`
				Traces []string `json:"traces"`
			}{node, rec.TraceIDs()})
			return
		}
		frag, ok := rec.Fragment(id)
		if !ok {
			http.Error(w, fmt.Sprintf("telemetry: unknown trace %q", id), http.StatusNotFound)
			return
		}
		frag.Node = node
		_ = enc.Encode(frag)
	})
}

// FleetSpan is one span of an assembled distributed trace, attributed to
// the node that recorded it.
type FleetSpan struct {
	SpanData
	Node     string       `json:"node,omitempty"`
	Children []*FleetSpan `json:"children,omitempty"`
}

// MarshalJSON splices node and children into the span's own JSON object
// (the embedded SpanData's marshaller would otherwise be promoted and
// both fields silently dropped).
func (t *FleetSpan) MarshalJSON() ([]byte, error) {
	span, err := json.Marshal(t.SpanData)
	if err != nil || (t.Node == "" && len(t.Children) == 0) {
		return span, err
	}
	buf := span[:len(span)-1]
	if t.Node != "" {
		buf = append(buf, `,"node":`...)
		buf = strconv.AppendQuote(buf, t.Node)
	}
	if len(t.Children) > 0 {
		kids, err := json.Marshal(t.Children)
		if err != nil {
			return nil, err
		}
		buf = append(buf, `,"children":`...)
		buf = append(buf, kids...)
	}
	return append(buf, '}'), nil
}

// FleetTrace is a distributed trace assembled from per-node fragments:
// one tree spanning every node the traced operation touched.
type FleetTrace struct {
	TraceID string `json:"traceID"`
	// Nodes lists the members that contributed spans, sorted.
	Nodes []string `json:"nodes,omitempty"`
	// IncompleteNodes lists ring members whose fragments could not be
	// collected (down, breaker-open, or timed out) — the tree may be
	// missing their spans.
	IncompleteNodes []string `json:"incompleteNodes,omitempty"`
	// DroppedSpans sums the spans dropped across all fragments.
	DroppedSpans int `json:"droppedSpans,omitempty"`
	// Complete reports whether the root span was found.
	Complete bool `json:"complete"`
	// Root is the parentless span's tree; nil while the root is still
	// running or its fragment is missing.
	Root *FleetSpan `json:"root,omitempty"`
	// Orphans are spans whose parent span was not collected.
	Orphans []*FleetSpan `json:"orphans,omitempty"`
}

// AssembleTrace merges per-node fragments of one trace into a single
// cross-node tree. Duplicate span IDs (a fragment fetched twice) keep
// their first occurrence; spans whose parent is on a missing fragment
// surface as orphans rather than vanishing. incompleteNodes is recorded
// verbatim so a partial assembly says so explicitly.
func AssembleTrace(id string, frags []TraceFragment, incompleteNodes []string) FleetTrace {
	t := FleetTrace{TraceID: id, IncompleteNodes: incompleteNodes}
	nodes := make(map[string]*FleetSpan)
	var contributors []string
	for _, f := range frags {
		if f.TraceID != "" && f.TraceID != id {
			continue
		}
		t.DroppedSpans += f.DroppedSpans
		seen := false
		for _, d := range f.Spans {
			if _, dup := nodes[d.SpanID]; dup {
				continue
			}
			nodes[d.SpanID] = &FleetSpan{SpanData: d, Node: f.Node}
			seen = true
		}
		if seen && f.Node != "" {
			contributors = append(contributors, f.Node)
		}
	}
	sort.Strings(contributors)
	t.Nodes = dedupSorted(contributors)
	for _, n := range nodes {
		switch {
		case n.ParentID == "":
			if t.Root == nil {
				t.Root = n
			} else {
				t.Orphans = append(t.Orphans, n)
			}
		case nodes[n.ParentID] != nil:
			parent := nodes[n.ParentID]
			parent.Children = append(parent.Children, n)
		default:
			t.Orphans = append(t.Orphans, n)
		}
	}
	t.Complete = t.Root != nil
	for _, n := range nodes {
		sort.Slice(n.Children, func(a, b int) bool {
			return n.Children[a].Start.Before(n.Children[b].Start)
		})
	}
	sort.Slice(t.Orphans, func(a, b int) bool { return t.Orphans[a].Start.Before(t.Orphans[b].Start) })
	return t
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
