package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// spanData builds a raw span for assembly tests.
func spanData(trace, id, parent, name string, start time.Time) SpanData {
	return SpanData{TraceID: trace, SpanID: id, ParentID: parent, Name: name,
		Start: start, End: start.Add(time.Millisecond)}
}

func TestAssembleTraceCrossNode(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	frags := []TraceFragment{
		{TraceID: trace, Node: "n1", Spans: []SpanData{
			spanData(trace, "aaaaaaaaaaaaaaaa", "", "client:stream", t0),
			spanData(trace, "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "cluster:forward", t0.Add(time.Millisecond)),
		}, DroppedSpans: 2},
		{TraceID: trace, Node: "n2", Spans: []SpanData{
			spanData(trace, "cccccccccccccccc", "bbbbbbbbbbbbbbbb", "http:/stream/enact", t0.Add(2*time.Millisecond)),
			// Parent never collected: must surface as an orphan.
			spanData(trace, "dddddddddddddddd", "ffffffffffffffff", "service:lost-parent", t0.Add(3*time.Millisecond)),
		}},
		// Duplicate fetch of n2's fragment: spans must not double.
		{TraceID: trace, Node: "n2", Spans: []SpanData{
			spanData(trace, "cccccccccccccccc", "bbbbbbbbbbbbbbbb", "http:/stream/enact", t0.Add(2*time.Millisecond)),
		}},
		// Fragment of a different trace: skipped entirely.
		{TraceID: "deadbeefdeadbeefdeadbeefdeadbeef", Node: "n3", Spans: []SpanData{
			spanData("deadbeefdeadbeefdeadbeefdeadbeef", "eeeeeeeeeeeeeeee", "", "other", t0)}},
	}
	got := AssembleTrace(trace, frags, []string{"n4"})
	if !got.Complete || got.Root == nil {
		t.Fatalf("trace incomplete: %+v", got)
	}
	if want := []string{"n1", "n2"}; strings.Join(got.Nodes, ",") != strings.Join(want, ",") {
		t.Fatalf("contributors = %v; want %v", got.Nodes, want)
	}
	if len(got.IncompleteNodes) != 1 || got.IncompleteNodes[0] != "n4" {
		t.Fatalf("incomplete = %v; want [n4]", got.IncompleteNodes)
	}
	if got.DroppedSpans != 2 {
		t.Fatalf("dropped = %d; want 2", got.DroppedSpans)
	}
	if got.Root.Name != "client:stream" || got.Root.Node != "n1" {
		t.Fatalf("root = %s on %s", got.Root.Name, got.Root.Node)
	}
	if len(got.Root.Children) != 1 || got.Root.Children[0].Name != "cluster:forward" {
		t.Fatalf("root children = %+v", got.Root.Children)
	}
	hop := got.Root.Children[0]
	if len(hop.Children) != 1 || hop.Children[0].Node != "n2" || hop.Children[0].Name != "http:/stream/enact" {
		t.Fatalf("forward hop children = %+v; want the n2 server span", hop.Children)
	}
	if len(got.Orphans) != 1 || got.Orphans[0].Name != "service:lost-parent" {
		t.Fatalf("orphans = %+v", got.Orphans)
	}
}

func TestAssembleTraceMarshalKeepsNodeAndChildren(t *testing.T) {
	t0 := time.Now()
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	got := AssembleTrace(trace, []TraceFragment{
		{TraceID: trace, Node: "n1", Spans: []SpanData{
			spanData(trace, "aaaaaaaaaaaaaaaa", "", "root", t0),
			spanData(trace, "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "child", t0),
		}},
	}, nil)
	data, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"node":"n1"`, `"children":[`, `"name":"child"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("marshalled trace lacks %s:\n%s", want, data)
		}
	}
}

func TestFragmentsHandler(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()

	srv := httptest.NewServer(FragmentsHandler(rec, "n1"))
	defer srv.Close()

	// Listing.
	resp, err := http.Get(srv.URL + "/debug/traces/")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Node   string   `json:"node"`
		Traces []string `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listing.Node != "n1" || len(listing.Traces) != 1 || listing.Traces[0] != root.TraceID {
		t.Fatalf("listing = %+v", listing)
	}

	// One fragment.
	resp, err = http.Get(srv.URL + "/debug/traces/" + root.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var frag TraceFragment
	if err := json.NewDecoder(resp.Body).Decode(&frag); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if frag.Node != "n1" || frag.TraceID != root.TraceID || len(frag.Spans) != 2 || !frag.Complete {
		t.Fatalf("fragment = %+v", frag)
	}

	// Unknown trace.
	resp, err = http.Get(srv.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d; want 404", resp.StatusCode)
	}
}
