// Package telemetry is Qurator's observability layer: a process-wide
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// with Prometheus text-format exposition) plus lightweight spans
// (trace-ID/span-ID, parent linkage, attributes) propagated through
// context.Context and collected into per-trace trees.
//
// The paper's central claim is that quality views make data-quality
// processing inspectable (§7: provenance answers "which condition
// produced the 18-item result?"); this package extends that
// inspectability from *what* an enactment decided to *how* it behaved —
// per-processor latencies, breaker states, retry spend, window lag — and
// links the two worlds by stamping each enactment's trace ID into its
// RDF provenance record (q:traceID).
//
// Everything is stdlib-only and safe for concurrent use. Metric
// mutation on the hot path is one atomic op (two for histograms); the
// registry lock is touched only when a new series materialises.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (stored as float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// addFloat64 atomically adds delta to a float64 stored as uint64 bits
// (CAS loop; contention-tolerant) — the shared hot-path primitive behind
// Gauge.Add and Histogram.Observe's sum.
func addFloat64(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { addFloat64(&g.bits, delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bucket upper bounds, in seconds —
// the classic latency spread from 1ms to 10s.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v (le is inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat64(&h.sumBits, v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric type names (also the Prometheus TYPE spellings).
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labelled instance within a family.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
	order  []string
}

// labelKey joins label values into a map key; 0xff never appears in
// sane label values so collisions require deliberately hostile input.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s expects %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter { return v.fam.get(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.get(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.get(values).h }

// Registry holds metric families. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-wide registry every instrumented layer writes
// to and quratord's /metrics exposes.
var Default = NewRegistry()

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the named family, creating it on first registration.
// Registering an existing name with a different type, label schema or
// bucket layout panics — metric identity is a programming contract.
func (r *Registry) register(name, help, typ string, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("telemetry: invalid label name %q for metric %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s with %d label(s), was %s with %d",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %s re-registered with label %q, was %q",
					name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("telemetry: histogram %s buckets are not ascending", name))
		}
		buckets = append([]float64(nil), buckets...)
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns (registering if needed) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec returns (registering if needed) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, typeCounter, nil, labels)}
}

// Gauge returns (registering if needed) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec returns (registering if needed) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, typeGauge, nil, labels)}
}

// Histogram returns (registering if needed) an unlabelled histogram.
// nil buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec returns (registering if needed) a labelled histogram
// family. nil buckets select DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, typeHistogram, buckets, labels)}
}
