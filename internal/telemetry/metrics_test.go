package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestCounterVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "", "endpoint")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Inc()
	if got := v.With("a").Value(); got != 2 {
		t.Fatalf("series a = %d, want 2", got)
	}
	if got := v.With("b").Value(); got != 1 {
		t.Fatalf("series b = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", got)
	}
	// le is inclusive: 0.1 lands in the first bucket.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestRegisterIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("dup_total", "", "x")
	b := r.CounterVec("dup_total", "", "x")
	a.With("1").Inc()
	if got := b.With("1").Value(); got != 1 {
		t.Fatalf("re-registration returned a different family")
	}
	mustPanic(t, "type conflict", func() { r.Gauge("dup_total", "") })
	mustPanic(t, "label conflict", func() { r.CounterVec("dup_total", "", "y") })
	mustPanic(t, "bad name", func() { r.Counter("9bad", "") })
	mustPanic(t, "bad label", func() { r.CounterVec("ok_total", "", "9bad") })
	mustPanic(t, "label arity", func() { a.With("1", "2") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h_seconds", "", []float64{1, 0.5}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestConcurrentMetricMutation(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "", "worker")
	h := r.Histogram("conc_seconds", "", nil)
	g := r.Gauge("conc_gauge", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				v.With(label).Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += v.With(l).Value()
	}
	if total != 8000 {
		t.Fatalf("counter total = %d, want 8000", total)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

func TestWritePromAndRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("qurator_requests_total", "requests served", "endpoint", "outcome").
		With("/services/x", "ok").Add(3)
	r.Gauge("qurator_breaker_state", "0 closed 1 open").Set(1)
	h := r.HistogramVec("qurator_latency_seconds", "latency", []float64{0.01, 0.1}, "op")
	h.With("enact").Observe(0.005)
	h.With("enact").Observe(0.5)
	r.CounterVec("qurator_weird_total", "", "v").With(`quo"te\back` + "\nnl").Inc()

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`qurator_requests_total{endpoint="/services/x",outcome="ok"} 3`,
		"# TYPE qurator_latency_seconds histogram",
		`qurator_latency_seconds_bucket{op="enact",le="0.01"} 1`,
		`qurator_latency_seconds_bucket{op="enact",le="+Inf"} 2`,
		`qurator_latency_seconds_count{op="enact"} 2`,
		`qurator_weird_total{v="quo\"te\\back\nnl"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("round-trip validation failed: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad value":        "m_total notanumber\n",
		"bad type":         "# TYPE m_total widget\nm_total 1\n",
		"dup type":         "# TYPE m_total counter\n# TYPE m_total counter\nm_total 1\n",
		"type after use":   "m_total 1\n# TYPE m_total counter\n",
		"unclosed labels":  "m_total{a=\"b\" 1\n",
		"dup label":        "m_total{a=\"1\",a=\"2\"} 1\n",
		"no samples":       "# TYPE m_total counter\n",
		"bucket disorder":  "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"0.5\"} 3\nh_sum 1\nh_count 2\n",
		"bucket decrease":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
		"suffix non-histo": "# TYPE h histogram\n# TYPE x_total counter\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\nx_total_bucket{le=\"1\"} 1\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected validation error for:\n%s", name, doc)
		}
	}
	if err := ValidateExposition(strings.NewReader(
		"# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\"} 1 1712345678\n")); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("z_total", "", "k").With("v").Add(7)
	h := r.Histogram("a_seconds", "", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a_seconds" || snap[1].Name != "z_total" {
		t.Fatalf("snapshot order/content wrong: %+v", snap)
	}
	if snap[1].Series[0].Labels["k"] != "v" || snap[1].Series[0].Value != 7 {
		t.Fatalf("counter series wrong: %+v", snap[1].Series)
	}
	hs := snap[0].Series[0]
	if hs.Count != 1 || hs.Sum != 0.5 || len(hs.Buckets) != 1 || hs.Buckets[0].Count != 1 {
		t.Fatalf("histogram series wrong: %+v", hs)
	}
}
