package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format (0.0.4) document
// and reports the first malformed line. It is the round-trip check the
// CI benchmark smoke runs over /metrics output: every HELP/TYPE header
// must be well-formed and precede its samples, every sample line must
// parse as name{labels} value, histogram samples must belong to a
// declared histogram family, and cumulative bucket counts must be
// non-decreasing.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	types := map[string]string{} // family → declared TYPE
	helped := map[string]bool{}  // family → HELP seen
	sampled := map[string]bool{} // family → sample seen
	lastBucket := map[string]struct {
		cum uint64
		le  float64
	}{} // per bucket-series prefix: monotonicity check
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, helped, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := familyOf(name, types)
		if typ, ok := types[fam]; ok {
			if suffix != "" && typ != typeHistogram {
				return fmt.Errorf("line %d: sample %s has histogram suffix but %s is a %s", lineNo, name, fam, typ)
			}
			if typ == typeHistogram {
				switch suffix {
				case "_bucket":
					le, ok := labels["le"]
					if !ok {
						return fmt.Errorf("line %d: histogram bucket %s lacks an le label", lineNo, name)
					}
					if err := checkBucket(line, le, value, labels, lastBucket); err != nil {
						return fmt.Errorf("line %d: %w", lineNo, err)
					}
				case "_sum", "_count", "":
				default:
					return fmt.Errorf("line %d: unknown histogram sample %s", lineNo, name)
				}
			}
		}
		sampled[fam] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam := range types {
		if !sampled[fam] {
			return fmt.Errorf("family %s declares a TYPE but exposes no samples", fam)
		}
	}
	return nil
}

// familyOf strips a histogram suffix when the base name is a declared
// histogram family.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && types[base] == typeHistogram {
			return base, s
		}
	}
	return name, ""
}

func validateComment(line string, types map[string]string, helped, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if helped[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helped[name] = true
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s appears after its samples", name)
		}
		types[name] = typ
	default:
		// Free-form comments are legal.
	}
	return nil
}

// parseSample parses `name{k="v",...} value` (timestamp suffixes are
// accepted and ignored).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("sample line %q does not start with a metric name", line)
	}
	name = line[:i]
	labels = map[string]string{}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, labels)
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %s: %w", name, err)
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %s: want value [timestamp], got %q", name, strings.TrimSpace(rest))
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %s: bad timestamp %q", name, fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) && s[i] != ':' {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("empty label name at %q", s[i:])
		}
		key := s[start:i]
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label %s lacks '='", key)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s value is not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated value for label %s", key)
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %s", key)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %s", s[i+1], key)
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			val.WriteByte(s[i])
			i++
		}
		if _, dup := out[key]; dup {
			return 0, fmt.Errorf("duplicate label %s", key)
		}
		out[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// checkBucket enforces cumulative-bucket monotonicity per series (same
// labels modulo le), keyed by the sample line's label set minus le.
func checkBucket(line, le string, value float64, labels map[string]string, last map[string]struct {
	cum uint64
	le  float64
}) error {
	bound, err := parsePromFloat(le)
	if err != nil {
		return fmt.Errorf("bad le %q", le)
	}
	var keyParts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		keyParts = append(keyParts, k+"="+v)
	}
	// Prefix with the metric name so distinct histograms don't collide.
	name := line[:strings.IndexAny(line, "{ ")]
	key := name + "\xff" + labelKey(sortedCopy(keyParts))
	prev, seen := last[key]
	if seen {
		if bound < prev.le {
			return fmt.Errorf("bucket le=%s out of order (after le=%v)", le, prev.le)
		}
		if uint64(value) < prev.cum {
			return fmt.Errorf("bucket le=%s count %v below previous cumulative %d", le, value, prev.cum)
		}
	}
	last[key] = struct {
		cum uint64
		le  float64
	}{cum: uint64(value), le: bound}
	return nil
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ { // insertion sort; label sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
