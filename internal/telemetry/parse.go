package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one name/value pair of a parsed sample, in document order —
// order is preserved so a parsed exposition re-renders byte-identically.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Sample is one parsed sample line: name{labels} value [timestamp].
// For histogram families the Name keeps its _bucket/_sum/_count suffix.
type Sample struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	// Timestamp is the optional raw timestamp field ("" when absent),
	// kept verbatim for lossless re-rendering.
	Timestamp string `json:"timestamp,omitempty"`
}

// Label returns the value of the named label, and whether it is present.
func (s Sample) Label(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// sortedLabelKey is the sample's identity modulo label order and the
// histogram le label handled by callers: "k=v\xffk=v" with keys sorted.
func sortedLabelKey(labels []Label, skip string) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name == skip {
			continue
		}
		parts = append(parts, l.Name+"="+l.Value)
	}
	return labelKey(sortedCopy(parts))
}

// MetricFamily is one parsed metric family: its TYPE (empty for samples
// that never declared one), HELP text (unescaped; empty = no HELP line)
// and samples in document order.
type MetricFamily struct {
	Name    string   `json:"name"`
	Type    string   `json:"type,omitempty"`
	Help    string   `json:"help,omitempty"`
	Samples []Sample `json:"samples"`
}

// Exposition is a fully parsed Prometheus text-format (0.0.4) document,
// families in document order. It is the structured form /cluster/metrics
// federation merges; Write renders it back to valid exposition text.
type Exposition struct {
	Families []*MetricFamily `json:"families"`
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *MetricFamily {
	for _, f := range e.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// parser accumulates families and the validation state the format
// demands (HELP/TYPE before samples, cumulative buckets non-decreasing).
type parser struct {
	exp        *Exposition
	fams       map[string]*MetricFamily
	hasHelp    map[string]bool
	hasType    map[string]bool
	types      map[string]string // family → declared TYPE
	lastBucket map[string]struct {
		cum uint64
		le  float64
	}
}

func (p *parser) family(name string) *MetricFamily {
	f, ok := p.fams[name]
	if !ok {
		f = &MetricFamily{Name: name}
		p.fams[name] = f
		p.exp.Families = append(p.exp.Families, f)
	}
	return f
}

// ParseExposition parses a Prometheus text-format (0.0.4) document into
// its structured form, reporting the first malformed line: every
// HELP/TYPE header must be well-formed and precede its samples, every
// sample line must parse as name{labels} value, histogram samples must
// belong to a declared histogram family, and cumulative bucket counts
// must be non-decreasing. Free-form comments are legal and discarded.
func ParseExposition(r io.Reader) (*Exposition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	p := &parser{
		exp:     &Exposition{},
		fams:    make(map[string]*MetricFamily),
		hasHelp: make(map[string]bool),
		hasType: make(map[string]bool),
		types:   make(map[string]string),
		lastBucket: make(map[string]struct {
			cum uint64
			le  float64
		}),
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var err error
		if strings.HasPrefix(line, "#") {
			err = p.comment(line)
		} else {
			err = p.sample(line)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range p.exp.Families {
		if p.hasType[f.Name] && len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %s declares a TYPE but exposes no samples", f.Name)
		}
	}
	return p.exp, nil
}

// ValidateExposition parses a Prometheus text-format document and
// reports the first malformed line — the round-trip check CI runs over
// /metrics and /cluster/metrics output.
func ValidateExposition(r io.Reader) error {
	_, err := ParseExposition(r)
	return err
}

func (p *parser) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		// Free-form comments ("# anything") are legal; only HELP/TYPE
		// shapes are parsed. A bare "#" or "# word" is a comment too.
		if fields[0] == "#" && (len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE")) {
			return nil
		}
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if p.hasHelp[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		p.hasHelp[name] = true
		f := p.family(name)
		if len(fields) == 4 {
			f.Help = unescapeHelp(fields[3])
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if p.hasType[name] {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if f, ok := p.fams[name]; ok && len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s appears after its samples", name)
		}
		p.hasType[name] = true
		p.types[name] = typ
		p.family(name).Type = typ
	default:
		// Free-form comments are legal.
	}
	return nil
}

func (p *parser) sample(line string) error {
	s, err := parseSample(line)
	if err != nil {
		return err
	}
	fam, suffix := familyOf(s.Name, p.types)
	if typ, ok := p.types[fam]; ok {
		if suffix != "" && typ != typeHistogram {
			return fmt.Errorf("sample %s has histogram suffix but %s is a %s", s.Name, fam, typ)
		}
		if typ == typeHistogram {
			switch suffix {
			case "_bucket":
				le, ok := s.Label("le")
				if !ok {
					return fmt.Errorf("histogram bucket %s lacks an le label", s.Name)
				}
				if err := p.checkBucket(s, le); err != nil {
					return err
				}
			case "_sum", "_count", "":
			default:
				return fmt.Errorf("unknown histogram sample %s", s.Name)
			}
		}
	}
	f := p.family(fam)
	f.Samples = append(f.Samples, s)
	return nil
}

// familyOf strips a histogram suffix when the base name is a declared
// histogram family.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && types[base] == typeHistogram {
			return base, s
		}
	}
	return name, ""
}

// checkBucket enforces cumulative-bucket monotonicity per series (same
// labels modulo le), keyed by the sample's name plus its label set minus
// le.
func (p *parser) checkBucket(s Sample, le string) error {
	bound, err := parsePromFloat(le)
	if err != nil {
		return fmt.Errorf("bad le %q", le)
	}
	key := s.Name + "\xff" + sortedLabelKey(s.Labels, "le")
	prev, seen := p.lastBucket[key]
	if seen {
		if bound < prev.le {
			return fmt.Errorf("bucket le=%s out of order (after le=%v)", le, prev.le)
		}
		if uint64(s.Value) < prev.cum {
			return fmt.Errorf("bucket le=%s count %v below previous cumulative %d", le, s.Value, prev.cum)
		}
	}
	p.lastBucket[key] = struct {
		cum uint64
		le  float64
	}{cum: uint64(s.Value), le: bound}
	return nil
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return Sample{}, fmt.Errorf("sample line %q does not start with a metric name", line)
	}
	s := Sample{Name: line[:i]}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return Sample{}, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return Sample{}, fmt.Errorf("sample %s: want value [timestamp], got %q", s.Name, strings.TrimSpace(rest))
	}
	var err error
	s.Value, err = parsePromFloat(fields[0])
	if err != nil {
		return Sample{}, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return Sample{}, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
		s.Timestamp = fields[1]
	}
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{',
// returning the index just past the closing brace and the pairs in
// document order.
func parseLabels(s string) (int, []Label, error) {
	var out []Label
	seen := map[string]bool{}
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, out, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) && s[i] != ':' {
			i++
		}
		if i == start {
			return 0, nil, fmt.Errorf("empty label name at %q", s[i:])
		}
		key := s[start:i]
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("label %s lacks '='", key)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s value is not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated value for label %s", key)
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in label %s", key)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in label %s", s[i+1], key)
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			val.WriteByte(s[i])
			i++
		}
		if seen[key] {
			return 0, nil, fmt.Errorf("duplicate label %s", key)
		}
		seen[key] = true
		out = append(out, Label{Name: key, Value: val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ { // insertion sort; label sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// unescapeHelp reverses the HELP escaping (\\ → \, \n → newline),
// scanning left-to-right so "\\n" stays a literal backslash-n.
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Write renders the exposition back to Prometheus text format: HELP
// (when present) then TYPE (when declared) then the samples, everything
// in parsed order with label order preserved — parse∘Write is the
// identity on documents this package's WriteProm produces.
func (e *Exposition) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range e.Families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		if f.Type != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			bw.WriteString(s.Name)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(l.Name)
					bw.WriteString(`="`)
					bw.WriteString(escapeLabel(l.Value))
					bw.WriteByte('"')
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.Value))
			if s.Timestamp != "" {
				bw.WriteByte(' ')
				bw.WriteString(s.Timestamp)
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
