package telemetry

import (
	"context"
	"net/http"
	"strings"
)

// TraceparentHeader carries trace context across process boundaries in
// the W3C traceparent layout: version-traceid-parentid-flags, e.g.
//
//	X-Qurator-Traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// Every fleet hop — cluster forwarding, heartbeats, the resilient
// transport, QA service invocations, the streaming client — injects it
// on outbound requests and extracts it on inbound ones, so one enactment
// is one trace ID no matter how many quratord nodes it crosses.
const TraceparentHeader = "X-Qurator-Traceparent"

// TraceIDHeader is the response header a traced endpoint answers with:
// the trace ID its handling was recorded under, so a client that did not
// send a traceparent still learns where to find its trace.
const TraceIDHeader = "X-Qurator-Trace-Id"

// FormatTraceparent renders trace context as a traceparent value
// (version 00, sampled flag set — Qurator records every span it starts).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent splits a traceparent value into its trace and parent
// span IDs. Accepted trace IDs are 32 (current) or 16 (pre-fleet) hex
// chars, span IDs 16; all-zero IDs and unknown versions are rejected, as
// the W3C spec directs.
func ParseTraceparent(s string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	traceID, spanID = parts[1], parts[2]
	if len(traceID) != 32 && len(traceID) != 16 {
		return "", "", false
	}
	if len(spanID) != 16 {
		return "", "", false
	}
	if !isHex(traceID) || !isHex(spanID) || allZero(traceID) || allZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Inject stamps the context's trace position into h: the active span if
// one is running, else a remote parent being passed through. With
// neither, h is left untouched. An existing traceparent is overwritten —
// the context is always more current than whatever an earlier layer set.
func Inject(ctx context.Context, h http.Header) {
	if s := SpanFrom(ctx); s != nil {
		h.Set(TraceparentHeader, FormatTraceparent(s.TraceID, s.SpanID))
		return
	}
	if traceID, spanID, ok := RemoteFrom(ctx); ok {
		h.Set(TraceparentHeader, FormatTraceparent(traceID, spanID))
	}
}

// Extract reads the traceparent header out of h. When present and valid
// it returns a context under which StartSpan joins the remote trace, and
// true; otherwise the context comes back unchanged with false. Handlers
// use the boolean to decide whether serving this request is worth a span
// at all — un-traced high-frequency calls should not each mint a trace.
func Extract(ctx context.Context, h http.Header) (context.Context, bool) {
	traceID, spanID, ok := ParseTraceparent(h.Get(TraceparentHeader))
	if !ok {
		return ctx, false
	}
	return ContextWithRemote(ctx, traceID, spanID), true
}
