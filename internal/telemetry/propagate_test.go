package telemetry

import (
	"context"
	"net/http"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid32 := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in          string
		wantTrace   string
		wantSpan    string
		wantOK      bool
		description string
	}{
		{valid32, "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", true, "current 128-bit trace ID"},
		{"00-00f067aa0ba902b7-00f067aa0ba902b7-01", "00f067aa0ba902b7", "00f067aa0ba902b7", true, "pre-fleet 64-bit trace ID"},
		{" " + valid32 + " ", "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", true, "surrounding whitespace"},
		{"", "", "", false, "empty"},
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", "", false, "unknown version"},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", "", "", false, "missing flags"},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", "", "", false, "all-zero trace ID"},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", "", "", false, "all-zero span ID"},
		{"00-4bf92f3577b34da6a3ce929d0e0e47XY-00f067aa0ba902b7-01", "", "", false, "non-hex trace ID"},
		{"00-4bf92f3577b34da6a3ce-00f067aa0ba902b7-01", "", "", false, "20-char trace ID"},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01", "", "", false, "short span ID"},
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", "", "", false, "uppercase hex rejected"},
	}
	for _, c := range cases {
		traceID, spanID, ok := ParseTraceparent(c.in)
		if ok != c.wantOK || traceID != c.wantTrace || spanID != c.wantSpan {
			t.Errorf("%s: ParseTraceparent(%q) = (%q, %q, %v); want (%q, %q, %v)",
				c.description, c.in, traceID, spanID, ok, c.wantTrace, c.wantSpan, c.wantOK)
		}
	}
}

func TestIDFormats(t *testing.T) {
	trace, span := newTraceID(), newSpanID()
	if len(trace) != 32 || !isHex(trace) {
		t.Fatalf("trace ID %q: want 32 lowercase hex chars", trace)
	}
	if len(span) != 16 || !isHex(span) {
		t.Fatalf("span ID %q: want 16 lowercase hex chars", span)
	}
	if newTraceID() == trace {
		t.Fatal("two trace IDs collided")
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	ctx, span := StartSpan(ctx, "client")
	defer span.End()

	h := http.Header{}
	Inject(ctx, h)
	got := h.Get(TraceparentHeader)
	if want := FormatTraceparent(span.TraceID, span.SpanID); got != want {
		t.Fatalf("injected %q; want %q", got, want)
	}

	// The far side: extract, then start the server span — it must join
	// the client's trace as a child of the client span.
	serverCtx, traced := Extract(context.Background(), h)
	if !traced {
		t.Fatal("Extract did not find the injected traceparent")
	}
	serverRec := NewRecorder(4)
	serverCtx = WithRecorder(serverCtx, serverRec)
	_, serverSpan := StartSpan(serverCtx, "server")
	if serverSpan.TraceID != span.TraceID {
		t.Fatalf("server joined trace %s; want %s", serverSpan.TraceID, span.TraceID)
	}
	if serverSpan.ParentID != span.SpanID {
		t.Fatalf("server parent is %s; want the client span %s", serverSpan.ParentID, span.SpanID)
	}
	serverSpan.End()
	frag, ok := serverRec.Fragment(span.TraceID)
	if !ok || len(frag.Spans) != 1 {
		t.Fatalf("server recorder fragment = %+v, %v; want one span", frag, ok)
	}
}

func TestExtractAbsentOrInvalid(t *testing.T) {
	for _, h := range []http.Header{
		{},
		{TraceparentHeader: []string{"not-a-traceparent"}},
	} {
		ctx, traced := Extract(context.Background(), h)
		if traced {
			t.Fatalf("Extract(%v) reported a trace", h)
		}
		if _, _, ok := RemoteFrom(ctx); ok {
			t.Fatalf("Extract(%v) attached a remote parent", h)
		}
	}
}

func TestInjectPassesThroughRemoteParent(t *testing.T) {
	// A relay that never starts its own span must still propagate the
	// inbound trace position.
	in := http.Header{TraceparentHeader: []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"}}
	ctx, _ := Extract(context.Background(), in)
	out := http.Header{}
	Inject(ctx, out)
	if got := out.Get(TraceparentHeader); got != in.Get(TraceparentHeader) {
		t.Fatalf("relayed traceparent %q; want %q", got, in.Get(TraceparentHeader))
	}
}

func TestInjectWithoutContextLeavesHeaderAlone(t *testing.T) {
	h := http.Header{}
	Inject(context.Background(), h)
	if len(h) != 0 {
		t.Fatalf("Inject without trace context wrote %v", h)
	}
}

func TestSpansDroppedCounter(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	before := spansDropped.Value()
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < rec.maxSpans+10; i++ {
		_, s := StartSpan(ctx, "child")
		s.End()
	}
	root.End()
	dropped := spansDropped.Value() - before
	if dropped != 11 { // 10 children past the cap, plus the root itself
		t.Fatalf("spans dropped counter rose by %d; want 11", dropped)
	}
	frag, ok := rec.Fragment(root.TraceID)
	if !ok {
		t.Fatal("trace missing from recorder")
	}
	if frag.DroppedSpans != int(dropped) {
		t.Fatalf("fragment reports %d dropped; counter says %d", frag.DroppedSpans, dropped)
	}
}
