package telemetry

import "sync"

// Series is a bounded ring buffer of float64 observations — the
// per-window quality-metric time series the streaming drift detector
// maintains (one Series per tracked metric). It keeps the most recent
// cap observations; older ones fall off the front. Safe for concurrent
// use.
type Series struct {
	mu   sync.Mutex
	vals []float64
	head int // next write position
	n    int // filled count, ≤ cap(vals)
}

// NewSeries returns a Series retaining the most recent capacity values
// (minimum 1).
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{vals: make([]float64, capacity)}
}

// Append records one observation, evicting the oldest when full.
func (s *Series) Append(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[s.head] = v
	s.head = (s.head + 1) % len(s.vals)
	if s.n < len(s.vals) {
		s.n++
	}
}

// Len returns the number of retained observations.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Snapshot returns the retained observations, oldest first.
func (s *Series) Snapshot() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.vals)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.vals[(start+i)%len(s.vals)])
	}
	return out
}
