package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanData is one finished span: the JSON-serialisable record a
// Recorder retains and /debug/enactments serves.
type SpanData struct {
	TraceID  string            `json:"traceID"`
	SpanID   string            `json:"spanID"`
	ParentID string            `json:"parentID,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      string            `json:"error,omitempty"`
}

// Duration is the span's wall-clock time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// MarshalJSON adds a derived durationMillis field so span trees read
// without client-side arithmetic.
func (d SpanData) MarshalJSON() ([]byte, error) {
	type alias SpanData
	return json.Marshal(struct {
		alias
		DurationMillis float64 `json:"durationMillis"`
	}{alias(d), float64(d.Duration()) / float64(time.Millisecond)})
}

// Span is an in-flight operation: started with StartSpan, finished with
// End/EndErr (exactly once; later calls are no-ops). All methods are
// safe for concurrent use.
type Span struct {
	// TraceID groups every span of one enactment; SpanID identifies this
	// span; ParentID links the tree. Immutable after StartSpan.
	TraceID, SpanID, ParentID string
	// Name describes the operation ("enact:view", a processor name, …).
	Name string
	// Start is the span's start time.
	Start time.Time

	rec *Recorder

	mu    sync.Mutex
	attrs map[string]string
	ended bool
	data  SpanData
}

// spansDropped counts finished spans discarded because their trace hit
// the per-trace retention cap — without it, span loss is invisible until
// someone pulls the affected trace tree.
var spansDropped = Default.Counter(
	"qurator_telemetry_spans_dropped_total",
	"Finished spans discarded because their trace reached the per-trace retention cap.")

// randHex returns n crypto-random bytes as lowercase hex. Trace IDs used
// to be drawn from math/rand seeded with time⊕pid, which is fine for one
// process but collision-prone across a fleet that now shares trace IDs:
// two nodes booted in the same nanosecond would mint overlapping ID
// streams. crypto/rand makes fleet-wide uniqueness a birthday problem on
// 128 bits instead of a seeding accident.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil {
		// crypto/rand failing means the OS entropy source is gone;
		// nothing sensible can run in that process.
		panic(fmt.Sprintf("telemetry: crypto/rand: %v", err))
	}
	return hex.EncodeToString(b)
}

// newTraceID mints a 128-bit trace ID (32 hex chars).
func newTraceID() string { return randHex(16) }

// newSpanID mints a 64-bit span ID (16 hex chars).
func newSpanID() string { return randHex(8) }

type spanCtxKey struct{}
type recorderCtxKey struct{}
type remoteCtxKey struct{}

// remoteParent is trace context extracted from an incoming request: the
// caller's trace and span IDs, carried without a local *Span because the
// parent span lives (and will be recorded) on another node.
type remoteParent struct {
	traceID, spanID string
}

// ContextWithRemote returns a context under which StartSpan joins the
// given trace as a child of the given (remote) span, instead of starting
// a fresh trace. It is how trace context crosses process boundaries —
// Extract calls it after parsing the traceparent header.
func ContextWithRemote(ctx context.Context, traceID, spanID string) context.Context {
	return context.WithValue(ctx, remoteCtxKey{}, remoteParent{traceID: traceID, spanID: spanID})
}

// RemoteFrom returns the remote trace/span context carried by ctx, if
// any. A local active span takes precedence: callers that need "who is
// my parent" should consult SpanFrom first, as StartSpan does.
func RemoteFrom(ctx context.Context) (traceID, spanID string, ok bool) {
	rp, ok := ctx.Value(remoteCtxKey{}).(remoteParent)
	return rp.traceID, rp.spanID, ok
}

// WithRecorder directs spans started under ctx (and their descendants)
// to rec instead of DefaultRecorder — qvrun -telemetry uses a private
// recorder so its dump holds exactly its own enactment.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderCtxKey{}, rec)
}

// SpanFrom returns the active span of the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFrom returns the active trace ID of the context, or "".
func TraceIDFrom(ctx context.Context) string {
	if s := SpanFrom(ctx); s != nil {
		return s.TraceID
	}
	return ""
}

// StartSpan begins a span named name. If the context carries an active
// span the new span joins its trace as a child; failing that, a remote
// parent (see ContextWithRemote) is joined the same way, so one
// enactment forwarded across fleet nodes stays one trace; otherwise a
// fresh trace starts. Spans are delivered (on End) to the parent's
// recorder or, for trace roots and remote children, to the context's
// recorder — absent one, to DefaultRecorder. The returned context
// carries the new span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{Name: name, SpanID: newSpanID(), Start: time.Now()}
	if parent := SpanFrom(ctx); parent != nil {
		s.TraceID, s.ParentID, s.rec = parent.TraceID, parent.SpanID, parent.rec
	} else {
		if traceID, spanID, ok := RemoteFrom(ctx); ok {
			s.TraceID, s.ParentID = traceID, spanID
		} else {
			s.TraceID = newTraceID()
		}
		if rec, ok := ctx.Value(recorderCtxKey{}).(*Recorder); ok {
			s.rec = rec
		} else {
			s.rec = DefaultRecorder
		}
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// End finishes the span successfully and returns its record.
func (s *Span) End() SpanData { return s.EndErr(nil) }

// EndErr finishes the span, recording err (nil = success), delivers it
// to the recorder, and returns its record. Only the first call takes
// effect; later calls return the original record.
func (s *Span) EndErr(err error) SpanData {
	s.mu.Lock()
	if s.ended {
		d := s.data
		s.mu.Unlock()
		return d
	}
	s.ended = true
	s.data = SpanData{
		TraceID: s.TraceID, SpanID: s.SpanID, ParentID: s.ParentID,
		Name: s.Name, Start: s.Start, End: time.Now(), Attrs: s.attrs,
	}
	if err != nil {
		s.data.Err = err.Error()
	}
	d := s.data
	rec := s.rec
	s.mu.Unlock()
	if rec != nil {
		rec.record(d)
	}
	return d
}

// traceEntry accumulates one trace's finished spans.
type traceEntry struct {
	spans   []SpanData
	dropped int
	done    bool // the root span (no parent) has ended
}

// Recorder retains the spans of the most recent traces, bounded in both
// trace count and spans per trace, for /debug/enactments and qvrun
// -telemetry. Safe for concurrent use.
type Recorder struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[string]*traceEntry
	order     []string // trace IDs, oldest first
}

// DefaultRecorder is where spans land when no recorder is attached to
// the context — the process-wide ring quratord's /debug/enactments
// serves.
var DefaultRecorder = NewRecorder(64)

// NewRecorder returns a recorder retaining up to maxTraces traces
// (min 1) of up to 2048 spans each.
func NewRecorder(maxTraces int) *Recorder {
	if maxTraces < 1 {
		maxTraces = 1
	}
	return &Recorder{
		maxTraces: maxTraces,
		maxSpans:  2048,
		traces:    make(map[string]*traceEntry),
	}
}

func (r *Recorder) record(d SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.traces[d.TraceID]
	if e == nil {
		for len(r.order) >= r.maxTraces {
			delete(r.traces, r.order[0])
			r.order = r.order[1:]
		}
		e = &traceEntry{}
		r.traces[d.TraceID] = e
		r.order = append(r.order, d.TraceID)
	}
	if len(e.spans) >= r.maxSpans {
		e.dropped++
		spansDropped.Inc()
	} else {
		e.spans = append(e.spans, d)
	}
	if d.ParentID == "" {
		e.done = true
	}
}

// SpanTree is a span with its children nested, children ordered by
// start time.
type SpanTree struct {
	SpanData
	Children []*SpanTree `json:"children,omitempty"`
}

// MarshalJSON splices the children into the span's own JSON object.
// Without it the embedded SpanData's marshaller would be promoted and
// the children silently dropped.
func (t *SpanTree) MarshalJSON() ([]byte, error) {
	span, err := json.Marshal(t.SpanData)
	if err != nil || len(t.Children) == 0 {
		return span, err
	}
	kids, err := json.Marshal(t.Children)
	if err != nil {
		return nil, err
	}
	buf := append(span[:len(span)-1], `,"children":`...)
	buf = append(buf, kids...)
	return append(buf, '}'), nil
}

// TraceTree is one trace assembled into span trees.
type TraceTree struct {
	TraceID string `json:"traceID"`
	// Root is the parentless span's tree; nil while the root is still
	// running (its children may already have finished).
	Root *SpanTree `json:"root,omitempty"`
	// Orphans are finished spans whose parent has not (yet) finished.
	Orphans []*SpanTree `json:"orphans,omitempty"`
	// DroppedSpans counts spans discarded past the per-trace cap.
	DroppedSpans int `json:"droppedSpans,omitempty"`
	// Complete reports whether the root span has ended.
	Complete bool `json:"complete"`
}

func buildTree(id string, e *traceEntry) TraceTree {
	t := TraceTree{TraceID: id, DroppedSpans: e.dropped, Complete: e.done}
	nodes := make(map[string]*SpanTree, len(e.spans))
	for _, d := range e.spans {
		nodes[d.SpanID] = &SpanTree{SpanData: d}
	}
	for _, n := range nodes {
		switch {
		case n.ParentID == "":
			t.Root = n
		case nodes[n.ParentID] != nil:
			parent := nodes[n.ParentID]
			parent.Children = append(parent.Children, n)
		default:
			t.Orphans = append(t.Orphans, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(a, b int) bool {
			return n.Children[a].Start.Before(n.Children[b].Start)
		})
	}
	sort.Slice(t.Orphans, func(a, b int) bool { return t.Orphans[a].Start.Before(t.Orphans[b].Start) })
	return t
}

// Traces returns up to n recent traces, newest first (n <= 0 = all).
func (r *Recorder) Traces(n int) []TraceTree {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.order) {
		n = len(r.order)
	}
	out := make([]TraceTree, 0, n)
	for i := len(r.order) - 1; i >= 0 && len(out) < n; i-- {
		id := r.order[i]
		out = append(out, buildTree(id, r.traces[id]))
	}
	return out
}

// Trace returns one trace's tree by ID.
func (r *Recorder) Trace(id string) (TraceTree, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.traces[id]
	if !ok {
		return TraceTree{}, false
	}
	return buildTree(id, e), true
}

// Len returns the number of retained traces.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// DebugHandler serves the recorder's recent traces as JSON:
//
//	GET /debug/enactments            → {"traces":[...]} (newest first)
//	GET /debug/enactments?n=5        → at most 5 traces
//	GET /debug/enactments?trace=<id> → that trace only (404 if unknown)
func DebugHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "telemetry: GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := req.URL.Query().Get("trace"); id != "" {
			t, ok := rec.Trace(id)
			if !ok {
				http.Error(w, fmt.Sprintf("telemetry: unknown trace %q", id), http.StatusNotFound)
				return
			}
			_ = enc.Encode(t)
			return
		}
		n := 20
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		_ = enc.Encode(struct {
			Traces []TraceTree `json:"traces"`
		}{rec.Traces(n)})
	})
}
