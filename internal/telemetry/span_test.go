package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestStartSpanParentLinkage(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	if root.TraceID == "" || root.SpanID == "" || root.ParentID != "" {
		t.Fatalf("bad root identifiers: %+v", root)
	}
	if got := TraceIDFrom(ctx); got != root.TraceID {
		t.Fatalf("TraceIDFrom = %q, want %q", got, root.TraceID)
	}
	cctx, child := StartSpan(ctx, "child")
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Fatalf("child not linked: %+v", child)
	}
	_, grand := StartSpan(cctx, "grand")
	if grand.ParentID != child.SpanID {
		t.Fatalf("grandchild parent = %q, want %q", grand.ParentID, child.SpanID)
	}
	grand.End()
	child.End()
	root.SetAttr("view", "paper")
	root.EndErr(errors.New("boom"))

	tree, ok := rec.Trace(root.TraceID)
	if !ok {
		t.Fatal("trace not recorded")
	}
	if !tree.Complete || tree.Root == nil || tree.Root.Name != "root" {
		t.Fatalf("bad tree: %+v", tree)
	}
	if tree.Root.Err != "boom" || tree.Root.Attrs["view"] != "paper" {
		t.Fatalf("root data wrong: %+v", tree.Root.SpanData)
	}
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "child" {
		t.Fatalf("children wrong: %+v", tree.Root.Children)
	}
	if len(tree.Root.Children[0].Children) != 1 || tree.Root.Children[0].Children[0].Name != "grand" {
		t.Fatalf("grandchildren wrong")
	}
}

func TestEndIdempotentAndDuration(t *testing.T) {
	_, s := StartSpan(WithRecorder(context.Background(), NewRecorder(1)), "x")
	d1 := s.End()
	d2 := s.EndErr(errors.New("late"))
	if d2.Err != "" || d1.End != d2.End {
		t.Fatalf("second End mutated span: %+v vs %+v", d1, d2)
	}
	if d1.Duration() < 0 {
		t.Fatalf("negative duration")
	}
	b, err := json.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "durationMillis") {
		t.Fatalf("marshal lacks durationMillis: %s", b)
	}
}

func TestRecorderEviction(t *testing.T) {
	rec := NewRecorder(2)
	ctx := WithRecorder(context.Background(), rec)
	var ids []string
	for i := 0; i < 3; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("t%d", i))
		ids = append(ids, s.TraceID)
		s.End()
	}
	if rec.Len() != 2 {
		t.Fatalf("recorder holds %d traces, want 2", rec.Len())
	}
	if _, ok := rec.Trace(ids[0]); ok {
		t.Fatal("oldest trace not evicted")
	}
	traces := rec.Traces(0)
	if len(traces) != 2 || traces[0].TraceID != ids[2] || traces[1].TraceID != ids[1] {
		t.Fatalf("Traces order wrong: %+v", traces)
	}
}

func TestRecorderSpanCapAndOrphans(t *testing.T) {
	rec := NewRecorder(1)
	rec.maxSpans = 2
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < 3; i++ {
		_, c := StartSpan(ctx, fmt.Sprintf("c%d", i))
		c.End()
	}
	// Root never ends in-window view: children c0/c1 kept, c2 dropped.
	tree, ok := rec.Trace(root.TraceID)
	if !ok {
		t.Fatal("trace missing")
	}
	if tree.Complete || tree.Root != nil {
		t.Fatalf("incomplete trace misreported: %+v", tree)
	}
	if len(tree.Orphans) != 2 || tree.DroppedSpans != 1 {
		t.Fatalf("orphans=%d dropped=%d, want 2/1", len(tree.Orphans), tree.DroppedSpans)
	}
}

func TestDefaultRecorderFallback(t *testing.T) {
	_, s := StartSpan(context.Background(), "default-bound")
	s.End()
	if _, ok := DefaultRecorder.Trace(s.TraceID); !ok {
		t.Fatal("span without recorder context did not reach DefaultRecorder")
	}
}

func TestConcurrentSpans(t *testing.T) {
	rec := NewRecorder(64)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, fmt.Sprintf("w%d", i))
			s.SetAttr("i", fmt.Sprint(i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	tree, _ := rec.Trace(root.TraceID)
	if len(tree.Root.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(tree.Root.Children))
	}
}

func TestDebugHandler(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "enact:paper")
	_, c := StartSpan(ctx, "proc")
	c.End()
	root.End()

	h := DebugHandler(rec)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/enactments", nil))
	var body struct {
		Traces []TraceTree `json:"traces"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rw.Body)
	}
	if len(body.Traces) != 1 || body.Traces[0].Root.Name != "enact:paper" {
		t.Fatalf("unexpected body: %s", rw.Body)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/enactments?trace="+root.TraceID, nil))
	if rw.Code != 200 {
		t.Fatalf("by-id status = %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/enactments?trace=nope", nil))
	if rw.Code != 404 {
		t.Fatalf("unknown trace status = %d, want 404", rw.Code)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/debug/enactments", nil))
	if rw.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rw.Code)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "x").Inc()
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "handler_total 1") {
		t.Fatalf("bad /metrics response %d: %s", rw.Code, rw.Body)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if err := ValidateExposition(strings.NewReader(rw.Body.String())); err != nil {
		t.Fatal(err)
	}
}

// TestSpanTreeJSONKeepsChildren guards against the embedded SpanData
// marshaller being promoted and dropping the nested children.
func TestSpanTreeJSONKeepsChildren(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()

	tree, ok := rec.Trace(root.TraceID)
	if !ok {
		t.Fatal("trace not recorded")
	}
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Root struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, data)
	}
	if decoded.Root.Name != "root" || len(decoded.Root.Children) != 1 || decoded.Root.Children[0].Name != "child" {
		t.Fatalf("children lost in JSON: %s", data)
	}
}
