package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the workflow as a Graphviz digraph: processors as boxes,
// data links as solid edges labelled with ports, control links as dashed
// edges, workflow inputs/outputs as ellipses. This is the "more general
// mapping from quality views to formal workflow models" hook the paper
// lists as further work — the same structure can be re-serialised for any
// target that consumes a node/edge model.
func (w *Workflow) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", w.name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")

	for _, name := range w.procOrder {
		fmt.Fprintf(&b, "  %q;\n", name)
	}

	// Workflow inputs and outputs as distinct shapes.
	inputNames := make([]string, 0, len(w.inputs))
	for in := range w.inputs {
		inputNames = append(inputNames, in)
	}
	sort.Strings(inputNames)
	for _, in := range inputNames {
		fmt.Fprintf(&b, "  %q [shape=ellipse, style=dashed];\n", "in:"+in)
		for _, ref := range w.inputs[in] {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", "in:"+in, ref.proc, ref.port)
		}
	}
	outputNames := make([]string, 0, len(w.outputs))
	for out := range w.outputs {
		outputNames = append(outputNames, out)
	}
	sort.Strings(outputNames)
	for _, out := range outputNames {
		ref := w.outputs[out]
		fmt.Fprintf(&b, "  %q [shape=ellipse, style=dashed];\n", "out:"+out)
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", ref.proc, "out:"+out, ref.port)
	}

	for _, l := range w.dataLinks {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s→%s\"];\n", l.From, l.To, l.FromPort, l.ToPort)
	}
	for _, c := range w.controlLinks {
		fmt.Fprintf(&b, "  %q -> %q [style=dashed, label=\"ctrl\"];\n", c.From, c.To)
	}
	b.WriteString("}\n")
	return b.String()
}
