package workflow

import (
	"context"
	"strings"
	"testing"
)

func TestToDOT(t *testing.T) {
	w := New("demo")
	w.MustAddProcessor(constant("src", 1))
	w.MustAddProcessor(&Func{
		PName: "sink", Inputs: []string{"in"}, Outputs: []string{"done"},
		Fn: func(_ context.Context, in Ports) (Ports, error) {
			return Ports{"done": in["in"]}, nil
		},
	})
	w.MustAddProcessor(constant("side", 2))
	w.MustAddLink(Link{"src", "out", "sink", "in"})
	w.MustAddControlLink(ControlLink{"side", "sink"})
	w.BindOutput("result", "sink", "done")

	dot := w.ToDOT()
	for _, want := range []string{
		`digraph "demo"`,
		`"src" -> "sink"`,
		`style=dashed, label="ctrl"`,
		`"out:result"`,
		`rankdir=LR`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces, vaguely well-formed.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestToDOTWithWorkflowInputs(t *testing.T) {
	w := New("io")
	w.MustAddProcessor(adder("add"))
	w.BindInput("x", "add", "a")
	w.BindInput("y", "add", "b")
	dot := w.ToDOT()
	if !strings.Contains(dot, `"in:x" -> "add"`) || !strings.Contains(dot, `"in:y" -> "add"`) {
		t.Errorf("inputs not rendered:\n%s", dot)
	}
}
