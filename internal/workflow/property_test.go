package workflow

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a random linear chain of increment processors computes its
// length, regardless of chain size — enactment delivers every value
// exactly once and in order.
func TestLinearChainProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		w := New("chain")
		w.MustAddProcessor(&Func{
			PName: "p0", Outputs: []string{"out"},
			Fn: func(context.Context, Ports) (Ports, error) {
				return Ports{"out": 0}, nil
			},
		})
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("p%d", i)
			w.MustAddProcessor(&Func{
				PName: name, Inputs: []string{"in"}, Outputs: []string{"out"},
				Fn: func(_ context.Context, in Ports) (Ports, error) {
					return Ports{"out": in["in"].(int) + 1}, nil
				},
			})
			w.MustAddLink(Link{fmt.Sprintf("p%d", i-1), "out", name, "in"})
		}
		w.BindOutput("result", fmt.Sprintf("p%d", n), "out")
		out, err := w.Run(context.Background(), nil)
		return err == nil && out["result"] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: in a random fan-out/fan-in DAG, the sink receives the sum of
// all source values exactly once (no lost or duplicated deliveries), and
// the trace contains each processor exactly once.
func TestFanInSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		w := New("fan")
		want := 0
		inputs := make([]string, n)
		for i := 0; i < n; i++ {
			v := rng.Intn(100)
			want += v
			name := fmt.Sprintf("src%d", i)
			val := v
			w.MustAddProcessor(&Func{
				PName: name, Outputs: []string{"out"},
				Fn: func(context.Context, Ports) (Ports, error) {
					return Ports{"out": val}, nil
				},
			})
			inputs[i] = fmt.Sprintf("in%d", i)
		}
		sink := &Func{
			PName: "sink", Inputs: inputs, Outputs: []string{"sum"},
			Fn: func(_ context.Context, in Ports) (Ports, error) {
				s := 0
				for _, v := range in {
					s += v.(int)
				}
				return Ports{"sum": s}, nil
			},
		}
		w.MustAddProcessor(sink)
		for i := 0; i < n; i++ {
			w.MustAddLink(Link{fmt.Sprintf("src%d", i), "out", "sink", inputs[i]})
		}
		w.BindOutput("sum", "sink", "sum")
		out, trace, err := w.RunTrace(context.Background(), nil)
		if err != nil || out["sum"] != want {
			return false
		}
		seen := map[string]int{}
		for _, e := range trace.Events {
			seen[e.Processor]++
		}
		if len(seen) != n+1 {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
