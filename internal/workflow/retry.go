package workflow

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Retry wraps a processor with Taverna-style fault tolerance: on failure
// the processor is re-executed up to Attempts times, sleeping Backoff
// between attempts (doubled each retry). Context cancellation is never
// retried. The wrapped processor keeps its name and ports, so retry
// policy is invisible to the workflow structure.
type Retry struct {
	Inner Processor
	// Attempts is the total number of tries (min 1).
	Attempts int
	// Backoff is the initial sleep between attempts (0 = immediate).
	Backoff time.Duration
}

// WithRetry wraps p so that transient failures are retried.
func WithRetry(p Processor, attempts int, backoff time.Duration) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	return &Retry{Inner: p, Attempts: attempts, Backoff: backoff}
}

// Name implements Processor.
func (r *Retry) Name() string { return r.Inner.Name() }

// InputPorts implements Processor.
func (r *Retry) InputPorts() []string { return r.Inner.InputPorts() }

// OutputPorts implements Processor.
func (r *Retry) OutputPorts() []string { return r.Inner.OutputPorts() }

// Execute implements Processor.
func (r *Retry) Execute(ctx context.Context, in Ports) (Ports, error) {
	var lastErr error
	backoff := r.Backoff
	attempts := 0
	for attempt := 1; attempt <= r.Attempts; attempt++ {
		out, err := r.Inner.Execute(ctx, in)
		attempts = attempt
		if err == nil {
			return out, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			break
		}
		if attempt < r.Attempts && backoff > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
	}
	// Report the attempts actually made: a run cut short by cancellation
	// must not claim the full configured attempt count.
	return nil, fmt.Errorf("workflow: processor %q failed after %d attempts: %w",
		r.Inner.Name(), attempts, lastErr)
}
