package workflow

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flaky fails the first n executions, then succeeds.
func flaky(name string, failures int32) (*Func, *int32) {
	var calls int32
	return &Func{
		PName:   name,
		Outputs: []string{"out"},
		Fn: func(context.Context, Ports) (Ports, error) {
			n := atomic.AddInt32(&calls, 1)
			if n <= failures {
				return nil, errors.New("transient fault")
			}
			return Ports{"out": int(n)}, nil
		},
	}, &calls
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	p, calls := flaky("svc", 2)
	r := WithRetry(p, 3, 0)
	out, err := r.Execute(context.Background(), nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["out"] != 3 || atomic.LoadInt32(calls) != 3 {
		t.Errorf("out = %v, calls = %d", out["out"], *calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p, calls := flaky("svc", 100)
	r := WithRetry(p, 3, 0)
	_, err := r.Execute(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err = %v", err)
	}
	if atomic.LoadInt32(calls) != 3 {
		t.Errorf("calls = %d, want 3", *calls)
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	var calls int32
	p := &Func{
		PName: "cancelled",
		Fn: func(ctx context.Context, _ Ports) (Ports, error) {
			atomic.AddInt32(&calls, 1)
			return nil, context.Canceled
		},
	}
	r := WithRetry(p, 5, 0)
	_, err := r.Execute(context.Background(), nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("cancellation retried: %d calls", calls)
	}
}

// TestRetryReportsActualAttempts is the regression test for the error
// message: when the loop breaks early on cancellation, the error must
// report the attempts actually made, not the configured maximum.
func TestRetryReportsActualAttempts(t *testing.T) {
	var calls int32
	p := &Func{
		PName: "cancelled",
		Fn: func(ctx context.Context, _ Ports) (Ports, error) {
			if atomic.AddInt32(&calls, 1) >= 2 {
				return nil, context.Canceled
			}
			return nil, errors.New("transient fault")
		},
	}
	r := WithRetry(p, 5, 0)
	_, err := r.Execute(context.Background(), nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("err = %v, want it to report 2 attempts (made), not 5 (configured)", err)
	}
}

func TestRetryPreservesInterface(t *testing.T) {
	p := adder("add")
	r := WithRetry(p, 2, time.Millisecond)
	if r.Name() != "add" {
		t.Errorf("Name = %q", r.Name())
	}
	if len(r.InputPorts()) != 2 || len(r.OutputPorts()) != 1 {
		t.Error("ports not forwarded")
	}
	// Works inside a workflow.
	w := New("w")
	w.MustAddProcessor(r)
	w.BindInput("x", "add", "a")
	w.BindInput("y", "add", "b")
	w.BindOutput("sum", "add", "sum")
	out, err := w.Run(context.Background(), Ports{"x": 1, "y": 2})
	if err != nil || out["sum"] != 3 {
		t.Errorf("run = %v, %v", out, err)
	}
}

func TestRetryMinimumOneAttempt(t *testing.T) {
	p, calls := flaky("svc", 0)
	r := WithRetry(p, -5, 0)
	if _, err := r.Execute(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(calls) != 1 {
		t.Errorf("calls = %d", *calls)
	}
}
