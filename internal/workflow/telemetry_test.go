package workflow

import (
	"context"
	"testing"

	"qurator/internal/telemetry"
)

// TestTraceEventsSpanBacked checks the enactment trace and the telemetry
// layer tell one story: every trace event carries the run's trace ID, a
// span ID, and span-derived timestamps, and the recorded span tree has
// the workflow span as root with one child per processor invocation.
func TestTraceEventsSpanBacked(t *testing.T) {
	w := New("traced")
	w.MustAddProcessor(constant("one", 1))
	w.MustAddProcessor(constant("two", 2))
	w.MustAddProcessor(adder("add"))
	w.MustAddLink(Link{"one", "out", "add", "a"})
	w.MustAddLink(Link{"two", "out", "add", "b"})
	if err := w.BindOutput("result", "add", "sum"); err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder(4)
	ctx := telemetry.WithRecorder(context.Background(), rec)
	_, trace, err := w.RunTrace(ctx, nil)
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}

	if trace.TraceID == "" {
		t.Fatal("trace has no telemetry trace ID")
	}
	if len(trace.Events) != 3 {
		t.Fatalf("trace has %d events, want 3", len(trace.Events))
	}
	seenSpans := map[string]bool{}
	for _, e := range trace.Events {
		if e.TraceID != trace.TraceID {
			t.Errorf("event %q trace = %q, want %q", e.Processor, e.TraceID, trace.TraceID)
		}
		if e.SpanID == "" || seenSpans[e.SpanID] {
			t.Errorf("event %q span ID %q missing or reused", e.Processor, e.SpanID)
		}
		seenSpans[e.SpanID] = true
		if e.Start.IsZero() || e.End.IsZero() || e.End.Before(e.Start) {
			t.Errorf("event %q has inconsistent timestamps [%v, %v]", e.Processor, e.Start, e.End)
		}
		if e.Duration() < 0 {
			t.Errorf("event %q has negative duration", e.Processor)
		}
	}

	tree, ok := rec.Trace(trace.TraceID)
	if !ok {
		t.Fatalf("recorder has no trace %s", trace.TraceID)
	}
	if tree.Root == nil || tree.Root.Name != "workflow:traced" {
		t.Fatalf("root span = %+v, want workflow:traced", tree.Root)
	}
	if len(tree.Root.Children) != 3 {
		t.Fatalf("workflow span has %d children, want 3 processor spans", len(tree.Root.Children))
	}
	for _, child := range tree.Root.Children {
		if !seenSpans[child.SpanID] {
			t.Errorf("recorded span %q (%s) not referenced by any trace event", child.Name, child.SpanID)
		}
	}
}

// TestTraceEventDurationMatchesSpan checks a processor's trace event and
// its recorded span report identical timestamps.
func TestTraceEventDurationMatchesSpan(t *testing.T) {
	w := New("timed")
	w.MustAddProcessor(constant("src", 7))
	if err := w.BindOutput("v", "src", "out"); err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(4)
	ctx := telemetry.WithRecorder(context.Background(), rec)
	_, trace, err := w.RunTrace(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := trace.Events[0]
	tree, ok := rec.Trace(trace.TraceID)
	if !ok || tree.Root == nil || len(tree.Root.Children) != 1 {
		t.Fatalf("unexpected recorded tree for %s", trace.TraceID)
	}
	span := tree.Root.Children[0]
	if !span.Start.Equal(e.Start) || !span.End.Equal(e.End) {
		t.Errorf("span [%v, %v] != event [%v, %v]", span.Start, span.End, e.Start, e.End)
	}
}
