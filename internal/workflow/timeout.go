package workflow

import (
	"context"
	"fmt"
	"time"
)

// Timeout wraps a processor with a per-invocation deadline, complementing
// the Retry fault-tolerance decorator: Execute runs under
// context.WithTimeout and a stuck processor fails with a timeout error
// instead of stalling the enactment. Streaming stages use this to bound
// stuck annotators (a hung external service must not wedge an unbounded
// stream). Like Retry, the wrapper keeps the inner processor's name and
// ports, so the policy is invisible to the workflow structure.
type Timeout struct {
	Inner Processor
	// D is the per-invocation deadline; 0 disables the wrapper.
	D time.Duration
}

// WithTimeout wraps p so each Execute completes within d.
func WithTimeout(p Processor, d time.Duration) *Timeout {
	return &Timeout{Inner: p, D: d}
}

// Name implements Processor.
func (t *Timeout) Name() string { return t.Inner.Name() }

// InputPorts implements Processor.
func (t *Timeout) InputPorts() []string { return t.Inner.InputPorts() }

// OutputPorts implements Processor.
func (t *Timeout) OutputPorts() []string { return t.Inner.OutputPorts() }

// Execute implements Processor.
func (t *Timeout) Execute(ctx context.Context, in Ports) (Ports, error) {
	if t.D <= 0 {
		return t.Inner.Execute(ctx, in)
	}
	ctx, cancel := context.WithTimeout(ctx, t.D)
	defer cancel()
	out, err := t.Inner.Execute(ctx, in)
	if err != nil && ctx.Err() == context.DeadlineExceeded {
		return nil, fmt.Errorf("workflow: processor %q exceeded %v timeout: %w",
			t.Inner.Name(), t.D, err)
	}
	return out, err
}

// SetProcessorTimeout sets a per-processor deadline applied to every
// processor invocation of this workflow's enactments — the Run-level
// knob: each Execute receives a context that expires after d. Zero (the
// default) disables the deadline. Set it before Run; it is not safe to
// change while an enactment is in flight.
func (w *Workflow) SetProcessorTimeout(d time.Duration) { w.procTimeout = d }

// ProcessorTimeout returns the per-processor deadline in force.
func (w *Workflow) ProcessorTimeout() time.Duration { return w.procTimeout }
