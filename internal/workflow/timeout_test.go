package workflow

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// stuckProc blocks until its context is cancelled.
type stuckProc struct{ name string }

func (p *stuckProc) Name() string          { return p.name }
func (p *stuckProc) InputPorts() []string  { return []string{"in"} }
func (p *stuckProc) OutputPorts() []string { return []string{"out"} }
func (p *stuckProc) Execute(ctx context.Context, in Ports) (Ports, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestWithTimeoutCutsStuckProcessor(t *testing.T) {
	p := WithTimeout(&stuckProc{name: "stuck"}, 20*time.Millisecond)
	start := time.Now()
	_, err := p.Execute(context.Background(), Ports{"in": 1})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "timeout") {
		t.Errorf("error message %q should name the processor and the timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestWithTimeoutZeroDisablesDeadline(t *testing.T) {
	done := &Func{
		PName:   "quick",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Fn: func(ctx context.Context, in Ports) (Ports, error) {
			if _, hasDeadline := ctx.Deadline(); hasDeadline {
				return nil, errors.New("unexpected deadline")
			}
			return Ports{"out": in["in"]}, nil
		},
	}
	out, err := WithTimeout(done, 0).Execute(context.Background(), Ports{"in": 7})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"] != 7 {
		t.Errorf("out = %v", out["out"])
	}
}

func TestWithTimeoutKeepsIdentity(t *testing.T) {
	inner := &stuckProc{name: "inner"}
	w := WithTimeout(inner, time.Second)
	if w.Name() != "inner" || len(w.InputPorts()) != 1 || len(w.OutputPorts()) != 1 {
		t.Error("decorator changed the processor identity")
	}
}

// TestWorkflowProcessorTimeout exercises the Run-level option: a workflow
// with a per-processor deadline fails fast when one node hangs instead of
// stalling the whole enactment.
func TestWorkflowProcessorTimeout(t *testing.T) {
	w := New("timed")
	w.MustAddProcessor(&stuckProc{name: "hang"})
	if err := w.BindInput("in", "hang", "in"); err != nil {
		t.Fatal(err)
	}
	if err := w.BindOutput("out", "hang", "out"); err != nil {
		t.Fatal(err)
	}
	w.SetProcessorTimeout(20 * time.Millisecond)
	if got := w.ProcessorTimeout(); got != 20*time.Millisecond {
		t.Fatalf("ProcessorTimeout = %v", got)
	}
	start := time.Now()
	_, err := w.Run(context.Background(), Ports{"in": 1})
	if err == nil {
		t.Fatal("expected enactment error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("enactment took %v despite timeout", elapsed)
	}
	// The deadline is per processor, not per workflow: a healthy node is
	// unaffected even when the budget is smaller than the total runtime.
	w2 := New("healthy")
	for i, name := range []string{"a", "b"} {
		i := i
		w2.MustAddProcessor(&Func{
			PName:   name,
			Inputs:  []string{"in"},
			Outputs: []string{"out"},
			Fn: func(ctx context.Context, in Ports) (Ports, error) {
				time.Sleep(15 * time.Millisecond)
				return Ports{"out": in["in"].(int) + i}, nil
			},
		})
	}
	w2.MustAddLink(Link{From: "a", FromPort: "out", To: "b", ToPort: "in"})
	if err := w2.BindInput("in", "a", "in"); err != nil {
		t.Fatal(err)
	}
	if err := w2.BindOutput("out", "b", "out"); err != nil {
		t.Fatal(err)
	}
	w2.SetProcessorTimeout(25 * time.Millisecond) // < 30ms total, > 15ms per node
	out, err := w2.Run(context.Background(), Ports{"in": 0})
	if err != nil {
		t.Fatalf("per-processor deadline tripped across processors: %v", err)
	}
	if out["out"] != 1 {
		t.Errorf("out = %v", out["out"])
	}
}
