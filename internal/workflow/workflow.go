// Package workflow implements the scientific-workflow model that Qurator
// targets (paper §6): processors drawn from an extensible collection,
// composed with data links and control links, enacted by an engine that
// invokes processors and transfers data from output ports to input ports.
//
// The model is deliberately the simple core shared by Taverna and similar
// systems (§6.1: "the simple workflow design primitives offered by Taverna
// ... are common to many similar models"): a control link from A to B
// means B starts as soon as A completes; a data link transfers one output
// port's value to one input port. Workflows are themselves processors, so
// a compiled quality workflow embeds into a host workflow as a single node
// (§6.2).
package workflow

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"qurator/internal/telemetry"
)

// Enactment metrics: every processor invocation lands here, labelled by
// workflow and processor, so /metrics answers "which node is slow?"
// without reading traces.
var (
	procDuration = telemetry.Default.HistogramVec(
		"qurator_processor_duration_seconds",
		"Wall-clock time of one processor invocation.",
		nil, "workflow", "processor")
	procFires = telemetry.Default.CounterVec(
		"qurator_processor_fires_total",
		"Processor invocations, successful or not.",
		"workflow", "processor")
	procFailures = telemetry.Default.CounterVec(
		"qurator_processor_failures_total",
		"Processor invocations that returned an error or panicked.",
		"workflow", "processor")
)

// Data is a value transferred along a data link. Processors agree on
// concrete types out of band (the Qurator services exchange annotation
// maps and item lists).
type Data interface{}

// Ports maps port names to values.
type Ports map[string]Data

// Processor is one workflow node.
type Processor interface {
	// Name is the processor's unique name within its workflow.
	Name() string
	// InputPorts and OutputPorts declare the node's interface.
	InputPorts() []string
	OutputPorts() []string
	// Execute consumes one value per input port and produces values for
	// (a subset of) the output ports.
	Execute(ctx context.Context, in Ports) (Ports, error)
}

// Func adapts a function into a Processor.
type Func struct {
	PName   string
	Inputs  []string
	Outputs []string
	Fn      func(ctx context.Context, in Ports) (Ports, error)
}

// Name implements Processor.
func (f *Func) Name() string { return f.PName }

// InputPorts implements Processor.
func (f *Func) InputPorts() []string { return f.Inputs }

// OutputPorts implements Processor.
func (f *Func) OutputPorts() []string { return f.Outputs }

// Execute implements Processor.
func (f *Func) Execute(ctx context.Context, in Ports) (Ports, error) {
	return f.Fn(ctx, in)
}

// Link is a data link: it transfers From's output port to To's input port.
type Link struct {
	From, FromPort string
	To, ToPort     string
}

func (l Link) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", l.From, l.FromPort, l.To, l.ToPort)
}

// ControlLink orders two processors without transferring data: To starts
// only after From completes.
type ControlLink struct {
	From, To string
}

// portRef addresses one port of one processor.
type portRef struct {
	proc, port string
}

// Workflow is a composition of processors. Build it with AddProcessor /
// AddLink / AddControlLink / BindInput / BindOutput, then Validate and
// Run. A Workflow is itself a Processor (for embedding).
type Workflow struct {
	name string

	procs        map[string]Processor
	procOrder    []string
	dataLinks    []Link
	controlLinks []ControlLink

	// inputs maps workflow-level input names to the processor ports they
	// feed; outputs maps workflow-level output names to their source port.
	inputs  map[string][]portRef
	outputs map[string]portRef

	// procTimeout bounds each processor invocation (see
	// SetProcessorTimeout); 0 means no deadline.
	procTimeout time.Duration
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{
		name:    name,
		procs:   make(map[string]Processor),
		inputs:  make(map[string][]portRef),
		outputs: make(map[string]portRef),
	}
}

// Name implements Processor.
func (w *Workflow) Name() string { return w.name }

// InputPorts implements Processor: the workflow-level input names.
func (w *Workflow) InputPorts() []string {
	out := make([]string, 0, len(w.inputs))
	for n := range w.inputs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OutputPorts implements Processor: the workflow-level output names.
func (w *Workflow) OutputPorts() []string {
	out := make([]string, 0, len(w.outputs))
	for n := range w.outputs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Processors returns the processor names in insertion order.
func (w *Workflow) Processors() []string {
	return append([]string(nil), w.procOrder...)
}

// Processor returns a processor by name.
func (w *Workflow) Processor(name string) (Processor, bool) {
	p, ok := w.procs[name]
	return p, ok
}

// DataLinks returns a copy of the data links.
func (w *Workflow) DataLinks() []Link { return append([]Link(nil), w.dataLinks...) }

// ControlLinks returns a copy of the control links.
func (w *Workflow) ControlLinks() []ControlLink {
	return append([]ControlLink(nil), w.controlLinks...)
}

// AddProcessor adds a node; names must be unique.
func (w *Workflow) AddProcessor(p Processor) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("workflow %s: processor with empty name", w.name)
	}
	if _, ok := w.procs[name]; ok {
		return fmt.Errorf("workflow %s: duplicate processor %q", w.name, name)
	}
	w.procs[name] = p
	w.procOrder = append(w.procOrder, name)
	return nil
}

// MustAddProcessor is AddProcessor that panics on error.
func (w *Workflow) MustAddProcessor(p Processor) {
	if err := w.AddProcessor(p); err != nil {
		panic(err)
	}
}

func (w *Workflow) checkPort(proc, port string, output bool) error {
	p, ok := w.procs[proc]
	if !ok {
		return fmt.Errorf("workflow %s: unknown processor %q", w.name, proc)
	}
	ports := p.InputPorts()
	kind := "input"
	if output {
		ports = p.OutputPorts()
		kind = "output"
	}
	for _, pt := range ports {
		if pt == port {
			return nil
		}
	}
	return fmt.Errorf("workflow %s: processor %q has no %s port %q (has %v)", w.name, proc, kind, port, ports)
}

// AddLink adds a data link, validating both endpoints. Each input port
// accepts at most one producer (data link or workflow input).
func (w *Workflow) AddLink(l Link) error {
	if err := w.checkPort(l.From, l.FromPort, true); err != nil {
		return err
	}
	if err := w.checkPort(l.To, l.ToPort, false); err != nil {
		return err
	}
	if err := w.checkUnfed(l.To, l.ToPort); err != nil {
		return err
	}
	w.dataLinks = append(w.dataLinks, l)
	return nil
}

// MustAddLink is AddLink that panics on error.
func (w *Workflow) MustAddLink(l Link) {
	if err := w.AddLink(l); err != nil {
		panic(err)
	}
}

func (w *Workflow) checkUnfed(proc, port string) error {
	for _, l := range w.dataLinks {
		if l.To == proc && l.ToPort == port {
			return fmt.Errorf("workflow %s: input %s.%s already fed by %v", w.name, proc, port, l)
		}
	}
	for in, refs := range w.inputs {
		for _, r := range refs {
			if r.proc == proc && r.port == port {
				return fmt.Errorf("workflow %s: input %s.%s already bound to workflow input %q", w.name, proc, port, in)
			}
		}
	}
	return nil
}

// AddControlLink adds an ordering constraint.
func (w *Workflow) AddControlLink(c ControlLink) error {
	if _, ok := w.procs[c.From]; !ok {
		return fmt.Errorf("workflow %s: unknown processor %q", w.name, c.From)
	}
	if _, ok := w.procs[c.To]; !ok {
		return fmt.Errorf("workflow %s: unknown processor %q", w.name, c.To)
	}
	w.controlLinks = append(w.controlLinks, c)
	return nil
}

// MustAddControlLink is AddControlLink that panics on error.
func (w *Workflow) MustAddControlLink(c ControlLink) {
	if err := w.AddControlLink(c); err != nil {
		panic(err)
	}
}

// BindInput routes a workflow-level input to a processor port. One input
// may fan out to several ports.
func (w *Workflow) BindInput(name, proc, port string) error {
	if err := w.checkPort(proc, port, false); err != nil {
		return err
	}
	if err := w.checkUnfed(proc, port); err != nil {
		return err
	}
	w.inputs[name] = append(w.inputs[name], portRef{proc, port})
	return nil
}

// BindOutput exposes a processor output port as a workflow-level output.
func (w *Workflow) BindOutput(name, proc, port string) error {
	if err := w.checkPort(proc, port, true); err != nil {
		return err
	}
	if _, ok := w.outputs[name]; ok {
		return fmt.Errorf("workflow %s: duplicate output %q", w.name, name)
	}
	w.outputs[name] = portRef{proc, port}
	return nil
}

// Validate checks structural well-formedness: every input port fed, no
// cycles across data+control edges.
func (w *Workflow) Validate() error {
	// Every processor input port must be fed by a link or workflow input.
	fed := map[portRef]bool{}
	for _, l := range w.dataLinks {
		fed[portRef{l.To, l.ToPort}] = true
	}
	for _, refs := range w.inputs {
		for _, r := range refs {
			fed[r] = true
		}
	}
	for _, name := range w.procOrder {
		for _, port := range w.procs[name].InputPorts() {
			if !fed[portRef{name, port}] {
				return fmt.Errorf("workflow %s: input port %s.%s is not fed", w.name, name, port)
			}
		}
	}
	// Cycle detection over the union of data and control edges.
	adj := map[string][]string{}
	for _, l := range w.dataLinks {
		adj[l.From] = append(adj[l.From], l.To)
	}
	for _, c := range w.controlLinks {
		adj[c.From] = append(adj[c.From], c.To)
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var visit func(n string) error
	visit = func(n string) error {
		switch state[n] {
		case inStack:
			return fmt.Errorf("workflow %s: cycle through processor %q", w.name, n)
		case done:
			return nil
		}
		state[n] = inStack
		for _, next := range adj[n] {
			if err := visit(next); err != nil {
				return err
			}
		}
		state[n] = done
		return nil
	}
	for _, name := range w.procOrder {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// Event is one entry of an enactment trace. Its timestamps come from
// the processor's telemetry span, so trace events and recorded span
// trees agree to the nanosecond.
type Event struct {
	Processor string
	Start     time.Time
	End       time.Time
	Err       error
	// TraceID and SpanID tie the event to the telemetry span recorded
	// for this invocation.
	TraceID string
	SpanID  string
}

// Duration is the event's wall-clock time.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Trace records one enactment.
type Trace struct {
	// TraceID is the telemetry trace every event of this enactment
	// belongs to.
	TraceID string

	mu     sync.Mutex
	Events []Event
}

func (t *Trace) add(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Events = append(t.Events, e)
}

// Completed returns the processors that completed successfully, in
// completion order.
func (t *Trace) Completed() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for _, e := range t.Events {
		if e.Err == nil {
			out = append(out, e.Processor)
		}
	}
	return out
}

// Execute implements Processor, so workflows nest.
func (w *Workflow) Execute(ctx context.Context, in Ports) (Ports, error) {
	return w.Run(ctx, in)
}

// Run enacts the workflow: processors start as soon as every input port
// has a value and every control predecessor has completed; independent
// processors run concurrently. It returns the workflow-level outputs.
func (w *Workflow) Run(ctx context.Context, in Ports) (Ports, error) {
	out, _, err := w.RunTrace(ctx, in)
	return out, err
}

// RunTrace is Run returning the enactment trace as well.
func (w *Workflow) RunTrace(ctx context.Context, in Ports) (Ports, *Trace, error) {
	if err := w.Validate(); err != nil {
		return nil, nil, err
	}
	for name := range w.inputs {
		if _, ok := in[name]; !ok {
			return nil, nil, fmt.Errorf("workflow %s: missing workflow input %q", w.name, name)
		}
	}

	spanCtx, wfSpan := telemetry.StartSpan(ctx, "workflow:"+w.name)
	wfSpan.SetAttr("workflow", w.name)

	ctx, cancel := context.WithCancel(spanCtx)
	defer cancel()

	type procState struct {
		pendingData    int
		pendingControl int
		inputs         Ports
		started        bool
	}
	states := make(map[string]*procState, len(w.procs))
	for _, name := range w.procOrder {
		states[name] = &procState{inputs: Ports{}}
	}
	for _, l := range w.dataLinks {
		states[l.To].pendingData++
	}
	for _, c := range w.controlLinks {
		states[c.To].pendingControl++
	}
	// Workflow inputs count as pending data until delivered below.
	for _, refs := range w.inputs {
		for _, r := range refs {
			states[r.proc].pendingData++
		}
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		results  = make(map[string]Ports, len(w.procs))
		trace    = &Trace{TraceID: wfSpan.TraceID}
	)

	setErrLocked := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}

	var start func(name string, inputs Ports)

	// tryStartLocked launches the processor if all its inputs and control
	// predecessors are satisfied; the caller holds mu.
	tryStartLocked := func(name string) {
		st := states[name]
		if st.started || st.pendingData > 0 || st.pendingControl > 0 {
			return
		}
		st.started = true
		wg.Add(1)
		go start(name, st.inputs)
	}

	// deliverLocked routes a completed processor's outputs and control
	// signals to its successors; the caller holds mu.
	deliverLocked := func(name string, outputs Ports) {
		results[name] = outputs
		for _, l := range w.dataLinks {
			if l.From != name {
				continue
			}
			v, ok := outputs[l.FromPort]
			if !ok {
				setErrLocked(fmt.Errorf("workflow %s: processor %q produced no value on port %q needed by %v",
					w.name, name, l.FromPort, l))
				return
			}
			st := states[l.To]
			st.inputs[l.ToPort] = v
			st.pendingData--
			tryStartLocked(l.To)
		}
		for _, c := range w.controlLinks {
			if c.From != name {
				continue
			}
			states[c.To].pendingControl--
			tryStartLocked(c.To)
		}
	}

	start = func(name string, inputs Ports) {
		defer wg.Done()
		if ctx.Err() != nil {
			return
		}
		procCtx, span := telemetry.StartSpan(ctx, name)
		span.SetAttr("workflow", w.name)
		outputs, err := func() (out Ports, err error) {
			// A panicking processor must not take down the enactor (it
			// may be hosting many enactments); panics become errors.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("workflow %s: processor %q panicked: %v", w.name, name, r)
				}
			}()
			execCtx := procCtx
			if w.procTimeout > 0 {
				var cancel context.CancelFunc
				execCtx, cancel = context.WithTimeout(procCtx, w.procTimeout)
				defer cancel()
			}
			return w.procs[name].Execute(execCtx, inputs)
		}()
		sd := span.EndErr(err)
		procFires.With(w.name, name).Inc()
		procDuration.With(w.name, name).Observe(sd.Duration().Seconds())
		if err != nil {
			procFailures.With(w.name, name).Inc()
		}
		trace.add(Event{
			Processor: name, Start: sd.Start, End: sd.End, Err: err,
			TraceID: sd.TraceID, SpanID: sd.SpanID,
		})
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			setErrLocked(fmt.Errorf("workflow %s: processor %q: %w", w.name, name, err))
			return
		}
		deliverLocked(name, outputs)
	}

	// Seed: deliver workflow inputs, then start every satisfied processor.
	mu.Lock()
	for inputName, refs := range w.inputs {
		for _, r := range refs {
			st := states[r.proc]
			st.inputs[r.port] = in[inputName]
			st.pendingData--
		}
	}
	for _, name := range w.procOrder {
		tryStartLocked(name)
	}
	mu.Unlock()

	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		wfSpan.EndErr(firstErr)
		return nil, trace, firstErr
	}
	// Collect workflow-level outputs.
	out := make(Ports, len(w.outputs))
	for name, ref := range w.outputs {
		ports, ok := results[ref.proc]
		if !ok {
			err := fmt.Errorf("workflow %s: output %q source %q never ran", w.name, name, ref.proc)
			wfSpan.EndErr(err)
			return nil, trace, err
		}
		v, ok := ports[ref.port]
		if !ok {
			err := fmt.Errorf("workflow %s: output %q: processor %q produced no %q port",
				w.name, name, ref.proc, ref.port)
			wfSpan.EndErr(err)
			return nil, trace, err
		}
		out[name] = v
	}
	wfSpan.End()
	return out, trace, nil
}
