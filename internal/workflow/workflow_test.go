package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// adder returns a processor with inputs a, b and output sum.
func adder(name string) *Func {
	return &Func{
		PName:   name,
		Inputs:  []string{"a", "b"},
		Outputs: []string{"sum"},
		Fn: func(_ context.Context, in Ports) (Ports, error) {
			return Ports{"sum": in["a"].(int) + in["b"].(int)}, nil
		},
	}
}

// constant returns a source processor emitting v on port out.
func constant(name string, v int) *Func {
	return &Func{
		PName:   name,
		Outputs: []string{"out"},
		Fn: func(context.Context, Ports) (Ports, error) {
			return Ports{"out": v}, nil
		},
	}
}

func TestLinearPipeline(t *testing.T) {
	w := New("pipeline")
	w.MustAddProcessor(constant("one", 1))
	w.MustAddProcessor(constant("two", 2))
	w.MustAddProcessor(adder("add"))
	w.MustAddLink(Link{"one", "out", "add", "a"})
	w.MustAddLink(Link{"two", "out", "add", "b"})
	if err := w.BindOutput("result", "add", "sum"); err != nil {
		t.Fatal(err)
	}
	out, err := w.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["result"] != 3 {
		t.Errorf("result = %v, want 3", out["result"])
	}
}

func TestWorkflowInputsFanOut(t *testing.T) {
	w := New("fan")
	w.MustAddProcessor(adder("add"))
	double := &Func{
		PName: "double", Inputs: []string{"x"}, Outputs: []string{"y"},
		Fn: func(_ context.Context, in Ports) (Ports, error) {
			return Ports{"y": in["x"].(int) * 2}, nil
		},
	}
	w.MustAddProcessor(double)
	if err := w.BindInput("n", "add", "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.BindInput("n", "double", "x"); err != nil {
		t.Fatal(err)
	}
	if err := w.BindInput("m", "add", "b"); err != nil {
		t.Fatal(err)
	}
	w.BindOutput("sum", "add", "sum")
	w.BindOutput("twice", "double", "y")

	out, err := w.Run(context.Background(), Ports{"n": 5, "m": 7})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["sum"] != 12 || out["twice"] != 10 {
		t.Errorf("out = %v", out)
	}
}

func TestMissingWorkflowInput(t *testing.T) {
	w := New("w")
	w.MustAddProcessor(adder("add"))
	w.BindInput("n", "add", "a")
	w.BindInput("m", "add", "b")
	if _, err := w.Run(context.Background(), Ports{"n": 1}); err == nil {
		t.Error("missing workflow input should fail")
	}
}

func TestControlLinkOrdering(t *testing.T) {
	var order []string
	var mu sync.Mutex
	mk := func(name string, delay time.Duration) *Func {
		return &Func{
			PName: name,
			Fn: func(context.Context, Ports) (Ports, error) {
				time.Sleep(delay)
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return Ports{}, nil
			},
		}
	}
	w := New("ctrl")
	// slow would finish after fast without the control link.
	w.MustAddProcessor(mk("slow", 30*time.Millisecond))
	w.MustAddProcessor(mk("fast", 0))
	w.MustAddControlLink(ControlLink{From: "slow", To: "fast"})
	if _, err := w.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "slow" || order[1] != "fast" {
		t.Errorf("order = %v, want [slow fast]", order)
	}
}

func TestConcurrentIndependentProcessors(t *testing.T) {
	var running, peak int32
	mk := func(name string) *Func {
		return &Func{
			PName: name,
			Fn: func(context.Context, Ports) (Ports, error) {
				n := atomic.AddInt32(&running, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				time.Sleep(20 * time.Millisecond)
				atomic.AddInt32(&running, -1)
				return Ports{}, nil
			},
		}
	}
	w := New("par")
	for i := 0; i < 4; i++ {
		w.MustAddProcessor(mk(fmt.Sprintf("p%d", i)))
	}
	if _, err := w.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Errorf("independent processors did not overlap (peak=%d)", peak)
	}
}

func TestValidateUnfedPort(t *testing.T) {
	w := New("w")
	w.MustAddProcessor(adder("add"))
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "not fed") {
		t.Errorf("Validate should report unfed port, got %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	relay := func(name string) *Func {
		return &Func{
			PName: name, Inputs: []string{"in"}, Outputs: []string{"out"},
			Fn: func(_ context.Context, in Ports) (Ports, error) {
				return Ports{"out": in["in"]}, nil
			},
		}
	}
	w := New("cyclic")
	w.MustAddProcessor(relay("a"))
	w.MustAddProcessor(relay("b"))
	w.MustAddLink(Link{"a", "out", "b", "in"})
	w.MustAddLink(Link{"b", "out", "a", "in"})
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate should report cycle, got %v", err)
	}
	// Control-link cycles are also rejected.
	w2 := New("cyclic2")
	w2.MustAddProcessor(constant("a", 1))
	w2.MustAddProcessor(constant("b", 2))
	w2.MustAddControlLink(ControlLink{"a", "b"})
	w2.MustAddControlLink(ControlLink{"b", "a"})
	if err := w2.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("control cycle not detected: %v", err)
	}
}

func TestLinkValidation(t *testing.T) {
	w := New("w")
	w.MustAddProcessor(constant("src", 1))
	w.MustAddProcessor(adder("add"))
	cases := []Link{
		{"nope", "out", "add", "a"},   // unknown source
		{"src", "nope", "add", "a"},   // unknown source port
		{"src", "out", "nope", "a"},   // unknown target
		{"src", "out", "add", "nope"}, // unknown target port
	}
	for _, l := range cases {
		if err := w.AddLink(l); err == nil {
			t.Errorf("AddLink(%v) should fail", l)
		}
	}
	// Double-feeding a port is rejected.
	w.MustAddLink(Link{"src", "out", "add", "a"})
	if err := w.AddLink(Link{"src", "out", "add", "a"}); err == nil {
		t.Error("double-fed port should be rejected")
	}
	if err := w.BindInput("x", "add", "a"); err == nil {
		t.Error("binding input over a fed port should be rejected")
	}
	// Duplicate processors and outputs.
	if err := w.AddProcessor(constant("src", 9)); err == nil {
		t.Error("duplicate processor should be rejected")
	}
	w.BindOutput("o", "src", "out")
	if err := w.BindOutput("o", "src", "out"); err == nil {
		t.Error("duplicate output should be rejected")
	}
	if err := w.AddControlLink(ControlLink{"src", "ghost"}); err == nil {
		t.Error("control link to unknown processor should be rejected")
	}
}

func TestProcessorErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	w := New("w")
	w.MustAddProcessor(&Func{
		PName: "bad",
		Fn:    func(context.Context, Ports) (Ports, error) { return nil, boom },
	})
	w.MustAddProcessor(adder("add"))
	w.BindInput("n", "add", "a")
	w.BindInput("m", "add", "b")
	_, err := w.Run(context.Background(), Ports{"n": 1, "m": 2})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestErrorCancelsDownstream(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	w := New("w")
	w.MustAddProcessor(&Func{
		PName: "bad", Outputs: []string{"out"},
		Fn: func(context.Context, Ports) (Ports, error) { return nil, boom },
	})
	w.MustAddProcessor(&Func{
		PName: "after", Inputs: []string{"in"},
		Fn: func(context.Context, Ports) (Ports, error) {
			atomic.AddInt32(&ran, 1)
			return Ports{}, nil
		},
	})
	w.MustAddLink(Link{"bad", "out", "after", "in"})
	if _, err := w.Run(context.Background(), nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Error("downstream processor should not run after failure")
	}
}

func TestPanickingProcessorBecomesError(t *testing.T) {
	w := New("w")
	w.MustAddProcessor(&Func{
		PName: "bomb",
		Fn: func(context.Context, Ports) (Ports, error) {
			panic("kaboom")
		},
	})
	_, err := w.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic should surface as error, got %v", err)
	}
}

func TestMissingOutputPortIsError(t *testing.T) {
	w := New("w")
	w.MustAddProcessor(&Func{
		PName: "src", Outputs: []string{"out"},
		Fn: func(context.Context, Ports) (Ports, error) { return Ports{}, nil }, // no "out"!
	})
	w.MustAddProcessor(&Func{
		PName: "sink", Inputs: []string{"in"},
		Fn: func(context.Context, Ports) (Ports, error) { return Ports{}, nil },
	})
	w.MustAddLink(Link{"src", "out", "sink", "in"})
	if _, err := w.Run(context.Background(), nil); err == nil {
		t.Error("missing output value should be an error")
	}
}

func TestWorkflowEmbedding(t *testing.T) {
	// Build an inner workflow computing (a+b), then embed it in an outer
	// workflow that doubles the result — the §6.2 embedding operation.
	inner := New("inner")
	inner.MustAddProcessor(adder("add"))
	inner.BindInput("x", "add", "a")
	inner.BindInput("y", "add", "b")
	inner.BindOutput("sum", "add", "sum")

	outer := New("outer")
	outer.MustAddProcessor(inner) // workflow as processor
	outer.MustAddProcessor(&Func{
		PName: "double", Inputs: []string{"v"}, Outputs: []string{"r"},
		Fn: func(_ context.Context, in Ports) (Ports, error) {
			return Ports{"r": in["v"].(int) * 2}, nil
		},
	})
	outer.MustAddLink(Link{"inner", "sum", "double", "v"})
	outer.BindInput("x", "inner", "x")
	outer.BindInput("y", "inner", "y")
	outer.BindOutput("result", "double", "r")

	out, err := outer.Run(context.Background(), Ports{"x": 3, "y": 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["result"] != 14 {
		t.Errorf("result = %v, want 14", out["result"])
	}
	// The embedded workflow exposes its interface as ports.
	if got := inner.InputPorts(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("inner InputPorts = %v", got)
	}
	if got := inner.OutputPorts(); len(got) != 1 || got[0] != "sum" {
		t.Errorf("inner OutputPorts = %v", got)
	}
}

func TestRunTraceRecordsEvents(t *testing.T) {
	w := New("traced")
	w.MustAddProcessor(constant("one", 1))
	w.MustAddProcessor(constant("two", 2))
	w.MustAddProcessor(adder("add"))
	w.MustAddLink(Link{"one", "out", "add", "a"})
	w.MustAddLink(Link{"two", "out", "add", "b"})
	_, trace, err := w.RunTrace(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	completed := trace.Completed()
	sort.Strings(completed)
	if len(completed) != 3 {
		t.Fatalf("completed = %v", completed)
	}
	// add must complete after its producers.
	idx := map[string]int{}
	for i, e := range trace.Events {
		idx[e.Processor] = i
	}
	if idx["add"] < idx["one"] || idx["add"] < idx["two"] {
		t.Errorf("trace order wrong: %v", trace.Events)
	}
	for _, e := range trace.Events {
		if e.End.Before(e.Start) {
			t.Error("event end before start")
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := New("w")
	started := make(chan struct{})
	w.MustAddProcessor(&Func{
		PName: "slow", Outputs: []string{"out"},
		Fn: func(ctx context.Context, _ Ports) (Ports, error) {
			close(started)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return Ports{"out": 1}, nil
			}
		},
	})
	go func() {
		<-started
		cancel()
	}()
	if _, err := w.Run(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDiamondDAG(t *testing.T) {
	// src -> (left, right) -> join
	w := New("diamond")
	w.MustAddProcessor(constant("src", 10))
	mk := func(name string, f func(int) int) *Func {
		return &Func{
			PName: name, Inputs: []string{"in"}, Outputs: []string{"out"},
			Fn: func(_ context.Context, in Ports) (Ports, error) {
				return Ports{"out": f(in["in"].(int))}, nil
			},
		}
	}
	w.MustAddProcessor(mk("left", func(x int) int { return x + 1 }))
	w.MustAddProcessor(mk("right", func(x int) int { return x * 2 }))
	w.MustAddProcessor(adder("join"))
	w.MustAddLink(Link{"src", "out", "left", "in"})
	w.MustAddLink(Link{"src", "out", "right", "in"})
	w.MustAddLink(Link{"left", "out", "join", "a"})
	w.MustAddLink(Link{"right", "out", "join", "b"})
	w.BindOutput("v", "join", "sum")
	out, err := w.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["v"] != 31 {
		t.Errorf("v = %v, want 31", out["v"])
	}
}

func BenchmarkEnactDiamond(b *testing.B) {
	w := New("diamond")
	w.MustAddProcessor(constant("src", 10))
	relay := func(name string) *Func {
		return &Func{
			PName: name, Inputs: []string{"in"}, Outputs: []string{"out"},
			Fn: func(_ context.Context, in Ports) (Ports, error) {
				return Ports{"out": in["in"]}, nil
			},
		}
	}
	w.MustAddProcessor(relay("left"))
	w.MustAddProcessor(relay("right"))
	w.MustAddProcessor(adder("join"))
	w.MustAddLink(Link{"src", "out", "left", "in"})
	w.MustAddLink(Link{"src", "out", "right", "in"})
	w.MustAddLink(Link{"left", "out", "join", "a"})
	w.MustAddLink(Link{"right", "out", "join", "b"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}
