package qurator

import (
	"context"
	"fmt"

	"qurator/internal/compiler"
)

// Multi-view enactment (multi-query optimization): a fleet registering
// thousands of views pays N× for prefixes the views share — the same
// annotators, the same enrichment, the same QA services. MergeViews
// fingerprints the compiled subgraphs and enacts shared prefixes once,
// fanning per-view actions out from the shared consolidation, with
// per-view outputs bit-identical to independent enactment.

type (
	// MultiView is a set of compiled views merged into one enactable plan.
	MultiView = compiler.MultiView
	// ViewResult is one member view's slice of a merged enactment.
	ViewResult = compiler.ViewResult
)

// MergeViews merges compiled views into one plan with shared prefixes
// deduplicated (see compiler.MergeViews for the merge-safety rules).
func MergeViews(views ...*Compiled) (*MultiView, error) {
	return compiler.MergeViews(views...)
}

// CompileViewSet compiles each view XML with the framework's resilience
// and data-plane settings and merges the results into one plan. View
// names must be unique within the set.
func (f *Framework) CompileViewSet(viewXMLs ...[]byte) (*MultiView, error) {
	views := make([]*Compiled, 0, len(viewXMLs))
	for i, xml := range viewXMLs {
		c, err := f.CompileView(xml)
		if err != nil {
			return nil, fmt.Errorf("qurator: view %d of set: %w", i, err)
		}
		views = append(views, c)
	}
	return compiler.MergeViews(views...)
}

// ExecuteViewSet compiles, merges and enacts a view set over a data set
// in one call, clearing per-run caches first. The result is keyed by
// view name, then by output name ("<action>:<port>"), exactly as if each
// view had been executed independently. Any single view's failure fails
// the call; use CompileViewSet + MultiView.Enact to observe per-view
// errors.
func (f *Framework) ExecuteViewSet(ctx context.Context, viewXMLs [][]byte, items []Item) (map[string]map[string]*Map, error) {
	mv, err := f.CompileViewSet(viewXMLs...)
	if err != nil {
		return nil, err
	}
	f.Repositories.ClearCaches()
	res, err := mv.Enact(ctx, items)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]*Map, len(res))
	for name, vr := range res {
		if vr.Err != nil {
			return nil, vr.Err
		}
		out[name] = vr.Outputs
	}
	return out, nil
}

// ExecuteSharedViewSet enacts published library views by name as one
// merged plan — the library is exactly where shared structure
// accumulates (paper §7: views are reusable quality knowledge).
func (f *Framework) ExecuteSharedViewSet(ctx context.Context, names []string, items []Item) (map[string]map[string]*Map, error) {
	xmls := make([][]byte, 0, len(names))
	for _, name := range names {
		entry, ok := f.Library.Get(name)
		if !ok {
			return nil, fmt.Errorf("qurator: no published view %q", name)
		}
		xmls = append(xmls, []byte(entry.ViewXML))
	}
	return f.ExecuteViewSet(ctx, xmls, items)
}
