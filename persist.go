package qurator

import (
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/mstore"
	"qurator/internal/qcube"
)

// Persistence configures the durable metadata plane: where annotation
// and provenance graphs live on disk and how eagerly the write-ahead log
// reaches stable storage.
type Persistence struct {
	// Dir is the data directory; the framework keeps the annotation
	// store under Dir/annotations and the provenance log under
	// Dir/provenance.
	Dir string
	// Fsync is the WAL durability policy: "always" (no committed write
	// ever lost), "interval" (default; bounded loss, near-zero cost) or
	// "never" (OS-paced).
	Fsync string
	// FsyncInterval overrides the background sync tick (default 100ms).
	FsyncInterval time.Duration
}

// EnablePersistence attaches durable backends to the "default"
// annotation repository and the provenance log. Metadata recovered from
// the directory is visible immediately: annotations Put before a restart
// answer Get/Query after it, and provenance run numbering continues
// where it stopped. The "cache" repository stays memory-only — per-run
// evidence is defined to die with the run (§4).
func (f *Framework) EnablePersistence(p Persistence) error {
	if p.Dir == "" {
		return errors.New("qurator: persistence needs a data directory")
	}
	policy, err := mstore.ParseFsyncPolicy(p.Fsync)
	if err != nil {
		return err
	}
	opts := mstore.Options{Fsync: policy, FsyncInterval: p.FsyncInterval}
	repo, ok := f.Repositories.Get("default")
	if !ok {
		return errors.New("qurator: no default repository")
	}
	local, ok := repo.(*annotstore.Repository)
	if !ok {
		return errors.New("qurator: default repository is not local; persistence needs a local store")
	}
	if err := local.Persist(filepath.Join(p.Dir, "annotations"), opts); err != nil {
		return err
	}
	if err := f.Provenance.Persist(filepath.Join(p.Dir, "provenance"), opts); err != nil {
		local.CloseStore()
		return err
	}
	return nil
}

// FlushMetadata checkpoints every durable backend: WAL contents become
// segments, so the next open recovers from sorted files instead of
// replaying logs.
func (f *Framework) FlushMetadata() error {
	var firstErr error
	for _, name := range f.Repositories.Names() {
		repo, _ := f.Repositories.Get(name)
		if local, ok := repo.(*annotstore.Repository); ok {
			if err := local.Flush(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := f.Provenance.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// CloseMetadata flushes and closes every durable backend. The framework
// keeps working in memory afterwards; call on shutdown.
func (f *Framework) CloseMetadata() error {
	var firstErr error
	for _, name := range f.Repositories.Names() {
		repo, _ := f.Repositories.Get(name)
		if local, ok := repo.(*annotstore.Repository); ok {
			if err := local.CloseStore(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := f.Provenance.CloseStore(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Cube returns the framework's quality cube: daQ-style rollups of every
// numeric annotation written to any repository, maintained incrementally
// on write.
func (f *Framework) Cube() *qcube.Cube { return f.cube }

// observeRepository feeds a repository's writes into the quality cube:
// each numeric annotation becomes a (metric, computedOn, timestamp,
// agent) → value observation in daQ terms.
func (f *Framework) observeRepository(r *annotstore.Repository) {
	cube := f.cube
	r.SetObserver(func(a annotstore.Annotation, at time.Time) {
		v, ok := a.Value.AsFloat()
		if !ok {
			return // only numeric evidence aggregates
		}
		cube.Observe(qcube.Observation{
			Metric:     a.Type.Value(),
			ComputedOn: a.Item.Value(),
			Agent:      a.Source.Value(),
			Value:      v,
			At:         at,
		})
	})
}

// CubeHandler serves the quality cube. GET /cube returns the summary
// (per-metric and per-source rollups); adding ?metric=, ?source=,
// ?from=, ?to= (RFC3339) returns the matching slice with its
// time-bucketed windows.
func (f *Framework) CubeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		sq := qcube.SliceQuery{Metric: q.Get("metric"), Source: q.Get("source")}
		var err error
		if v := q.Get("from"); v != "" {
			if sq.From, err = time.Parse(time.RFC3339, v); err != nil {
				http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("to"); v != "" {
			if sq.To, err = time.Parse(time.RFC3339, v); err != nil {
				http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if sq == (qcube.SliceQuery{}) {
			enc.Encode(f.cube.Summary())
			return
		}
		enc.Encode(f.cube.Slice(sq))
	})
}
