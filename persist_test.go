package qurator

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/provenance"
)

// TestPersistenceSurvivesRestart is the end-to-end durability check: a
// framework writes annotations and provenance with persistence on, shuts
// down, and a fresh framework over the same directory serves the same
// metadata — Get, Query, provenance history and run numbering all intact.
func TestPersistenceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	f := New()
	if err := f.EnablePersistence(Persistence{Dir: dir, Fsync: "never"}); err != nil {
		t.Fatal(err)
	}
	repo, _ := f.Repository("default")
	item := NewItem("urn:lsid:test:hit:1")
	if err := repo.Put(Annotation{
		Item:   item,
		Type:   Q("HitRatio"),
		Value:  evidence.Float(0.82),
		Source: Q("ImprintAnnotation"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Put(Annotation{
		Item:  NewItem("urn:lsid:test:hit:2"),
		Type:  Q("MassCoverage"),
		Value: evidence.Float(0.61),
	}); err != nil {
		t.Fatal(err)
	}
	run := f.Provenance.Record(provenance.Record{
		View:      "test-view",
		Started:   time.Now(),
		InputSize: 2,
		Outputs:   map[string]int{"accept:out": 1},
	})
	if err := f.Provenance.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(run.Value(), "run/1") {
		t.Fatalf("first run IRI = %s", run)
	}
	wantAnnots := tripleStrings(t, repo)
	wantProv := f.Provenance.Graph().Triples()
	if err := f.CloseMetadata(); err != nil {
		t.Fatal(err)
	}

	// Restart: a new framework over the same directory.
	f2 := New()
	if err := f2.EnablePersistence(Persistence{Dir: dir, Fsync: "never"}); err != nil {
		t.Fatal(err)
	}
	defer f2.CloseMetadata()
	repo2, _ := f2.Repository("default")

	if v, ok := repo2.Get(item, Q("HitRatio")); !ok {
		t.Fatal("HitRatio annotation lost across restart")
	} else if got, _ := v.AsFloat(); got != 0.82 {
		t.Fatalf("recovered value = %v, want 0.82", got)
	}
	if got := tripleStrings(t, repo2); len(got) != len(wantAnnots) {
		t.Fatalf("annotation graph has %d triples after restart, want %d", len(got), len(wantAnnots))
	} else {
		for i := range got {
			if got[i] != wantAnnots[i] {
				t.Fatalf("annotation triple %d differs:\n got  %s\n want %s", i, got[i], wantAnnots[i])
			}
		}
	}

	if f2.Provenance.Len() != 1 {
		t.Fatalf("provenance Len = %d after restart, want 1", f2.Provenance.Len())
	}
	gotProv := f2.Provenance.Graph().Triples()
	if len(gotProv) != len(wantProv) {
		t.Fatalf("provenance graph has %d triples, want %d", len(gotProv), len(wantProv))
	}
	rec, ok := f2.Provenance.LastRun()
	if !ok || rec.View != "test-view" || rec.Outputs["accept:out"] != 1 {
		t.Fatalf("LastRun after restart = %+v, %v", rec, ok)
	}
	// Run numbering continues, never collides.
	run2 := f2.Provenance.Record(provenance.Record{View: "second", Started: time.Now()})
	if !strings.HasSuffix(run2.Value(), "run/2") {
		t.Fatalf("post-restart run IRI = %s, want .../run/2", run2)
	}
}

func tripleStrings(t *testing.T, s Store) []string {
	t.Helper()
	local, ok := s.(*annotstore.Repository)
	if !ok {
		t.Fatal("not a local repository")
	}
	ts := local.Graph().Triples()
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.String()
	}
	return out
}

// TestCubeObservesAnnotations checks the always-on cube feed: numeric
// annotations written to any repository appear in the cube's rollups and
// on the /cube HTTP surface.
func TestCubeObservesAnnotations(t *testing.T) {
	f := New()
	repo, _ := f.Repository("default")
	for i, v := range []float64{0.2, 0.4, 0.9} {
		if err := repo.Put(Annotation{
			Item:  NewItem("urn:lsid:test:item:" + string(rune('a'+i))),
			Type:  Q("HitRatio"),
			Value: evidence.Float(v),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Non-numeric evidence is not aggregated.
	if err := repo.Put(Annotation{
		Item:  NewItem("urn:lsid:test:item:z"),
		Type:  Q("ScoreClass"),
		Value: evidence.String_("high"),
	}); err != nil {
		t.Fatal(err)
	}

	sum := f.Cube().Summary()
	if sum.Observations != 3 {
		t.Fatalf("cube saw %d observations, want 3", sum.Observations)
	}
	hr := sum.Metrics[Q("HitRatio").Value()]
	if hr.Count != 3 || hr.Min != 0.2 || hr.Max != 0.9 {
		t.Fatalf("HitRatio rollup = %+v", hr)
	}

	srv := httptest.NewServer(f.CubeHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/?metric=" + url.QueryEscape(Q("HitRatio").Value()))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var slice struct {
		Agg struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"agg"`
	}
	if err := json.NewDecoder(res.Body).Decode(&slice); err != nil {
		t.Fatal(err)
	}
	if slice.Agg.Count != 3 || slice.Agg.Mean < 0.49 || slice.Agg.Mean > 0.51 {
		t.Fatalf("/cube slice agg = %+v", slice.Agg)
	}
}
