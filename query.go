package qurator

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/sparql"
	"qurator/internal/telemetry"
)

// Metadata-plane query metrics. Snapshot age is the staleness of the
// snapshot handed to the evaluator — near zero in steady state, since
// snapshots are taken per query in O(1).
var (
	queryDuration = telemetry.Default.HistogramVec(
		"qurator_query_duration_seconds",
		"SPARQL query latency over the metadata plane.",
		nil, "target")
	queryTotal = telemetry.Default.CounterVec(
		"qurator_queries_total",
		"Metadata-plane queries by target and outcome.",
		"target", "status")
	querySnapshotAge = telemetry.Default.Gauge(
		"qurator_query_snapshot_age_seconds",
		"Age of the most recent metadata snapshot when its query started.")
)

// QueryRequest is the body of POST /query: a SPARQL query plus the
// metadata graph to run it against.
type QueryRequest struct {
	// Target selects the graph: "provenance" (default) or
	// "annotations" / "annotations:<repository>" (default repository
	// "default").
	Target string `json:"target"`
	// Query is the SPARQL text (SELECT or ASK).
	Query string `json:"query"`
}

// QueryResponse is the JSON result of POST /query.
type QueryResponse struct {
	Target string `json:"target"`
	// Vars and Rows carry SELECT results; terms render in N-Triples
	// syntax. Unbound variables are omitted from their row.
	Vars []string            `json:"vars,omitempty"`
	Rows []map[string]string `json:"rows,omitempty"`
	// Ok carries the ASK answer.
	Ok *bool `json:"ok,omitempty"`
	// DurationMillis is the evaluation wall-clock time.
	DurationMillis float64 `json:"durationMillis"`
}

// QueryHandler serves POST /query: SPARQL over the metadata plane — run
// provenance and quality annotations, "queried the same way as data"
// (paper §5). Queries evaluate over O(1) copy-on-write snapshots, so a
// slow query never blocks enactments writing provenance or annotations.
func (f *Framework) QueryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "query: POST a JSON {target, query} body", http.StatusMethodNotAllowed)
			return
		}
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("query: bad request body: %v", err), http.StatusBadRequest)
			return
		}
		if strings.TrimSpace(req.Query) == "" {
			http.Error(w, "query: empty query", http.StatusBadRequest)
			return
		}
		if req.Target == "" {
			req.Target = "provenance"
		}
		// Join the caller's trace when one arrived (provenance queries
		// issued while debugging an enactment correlate with it); an
		// un-traced query gets no span.
		if ctx, traced := telemetry.Extract(r.Context(), r.Header); traced {
			_, span := telemetry.StartSpan(ctx, "http:/query")
			span.SetAttr("target", req.Target)
			w.Header().Set(telemetry.TraceIDHeader, span.TraceID)
			defer span.End()
		}

		q, err := sparql.Parse(req.Query)
		if err != nil {
			queryTotal.With(targetLabel(req.Target), "error").Inc()
			http.Error(w, "query: "+err.Error(), http.StatusBadRequest)
			return
		}

		start := time.Now()
		res, err := f.runParsedQuery(req.Target, q, req.Query)
		elapsed := time.Since(start)
		if err != nil {
			status := http.StatusBadRequest
			if _, ok := err.(*unknownTargetError); ok {
				status = http.StatusNotFound
			}
			queryTotal.With(targetLabel(req.Target), "error").Inc()
			http.Error(w, "query: "+err.Error(), status)
			return
		}
		queryTotal.With(targetLabel(req.Target), "ok").Inc()

		resp := QueryResponse{Target: req.Target, DurationMillis: float64(elapsed.Microseconds()) / 1e3}
		if q.Form == sparql.FormAsk {
			ok := res.Ok
			resp.Ok = &ok
		} else {
			resp.Vars = res.Vars
			resp.Rows = make([]map[string]string, len(res.Bindings))
			for i, b := range res.Bindings {
				row := make(map[string]string, len(b))
				for v, t := range b {
					row[v] = t.String()
				}
				resp.Rows[i] = row
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	})
}

type unknownTargetError struct{ target string }

func (e *unknownTargetError) Error() string {
	return fmt.Sprintf("unknown query target %q", e.target)
}

func targetLabel(target string) string {
	switch {
	case target == "provenance":
		return "provenance"
	case target == "annotations" || strings.HasPrefix(target, "annotations:"):
		return "annotations"
	default:
		return "unknown"
	}
}

// RunQuery executes a SPARQL query against a metadata target —
// "provenance", or "annotations[:<repository>]" — recording the query
// metrics. It is the programmatic core of the POST /query endpoint.
func (f *Framework) RunQuery(target, query string) (*sparql.Result, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return f.runParsedQuery(target, q, query)
}

func (f *Framework) runParsedQuery(target string, q *sparql.Query, text string) (*sparql.Result, error) {
	start := time.Now()
	switch {
	case target == "provenance":
		snap := f.Provenance.Snapshot()
		querySnapshotAge.Set(snap.Age().Seconds())
		res, err := q.Exec(snap)
		queryDuration.With("provenance").Observe(time.Since(start).Seconds())
		return res, err

	case target == "annotations" || strings.HasPrefix(target, "annotations:"):
		name := strings.TrimPrefix(strings.TrimPrefix(target, "annotations"), ":")
		if name == "" {
			name = "default"
		}
		store, ok := f.Repository(name)
		if !ok {
			return nil, &unknownTargetError{target: target}
		}
		var (
			res *sparql.Result
			err error
		)
		if repo, ok := store.(*annotstore.Repository); ok {
			snap := repo.Snapshot()
			querySnapshotAge.Set(snap.Age().Seconds())
			res, err = q.Exec(snap)
		} else {
			// Remote stores evaluate on their own host.
			res, err = store.Query(text)
		}
		queryDuration.With("annotations").Observe(time.Since(start).Seconds())
		return res, err

	default:
		return nil, &unknownTargetError{target: target}
	}
}
