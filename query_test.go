package qurator

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/provenance"
	"qurator/internal/rdf"
)

func queryTestFramework(t *testing.T) *Framework {
	t.Helper()
	f := New()
	for i := 0; i < 5; i++ {
		f.Provenance.Record(provenance.Record{
			View:       "paper-view",
			Started:    time.Now(),
			Duration:   time.Duration(i) * time.Millisecond,
			InputSize:  10 * (i + 1),
			Outputs:    map[string]int{"accept": i},
			Conditions: map[string]string{"accept": "confidence > 0.5"},
		})
	}
	repo, _ := f.Repository("default")
	if err := repo.Put(Annotation{
		Item:  evidence.Item(rdf.IRI("urn:item:1")),
		Type:  Q("HitRatio"),
		Value: evidence.Float(0.8),
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

func postQuery(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, *QueryResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, rec.Body.String())
	}
	return rec, &resp
}

func TestQueryHandlerProvenance(t *testing.T) {
	f := queryTestFramework(t)
	h := f.QueryHandler()

	rec, resp := postQuery(t, h, `{
		"target": "provenance",
		"query": "SELECT ?run ?view WHERE { ?run <http://qurator.org/iq#usedView> ?view . }"
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(resp.Rows))
	}
	for _, row := range resp.Rows {
		if row["view"] != `"paper-view"` {
			t.Errorf("row view = %q", row["view"])
		}
	}
}

func TestQueryHandlerAnnotations(t *testing.T) {
	f := queryTestFramework(t)
	h := f.QueryHandler()

	rec, resp := postQuery(t, h, `{
		"target": "annotations:default",
		"query": "SELECT ?item WHERE { ?item <http://qurator.org/iq#containsEvidence> ?n . }"
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Rows) != 1 || resp.Rows[0]["item"] != "<urn:item:1>" {
		t.Fatalf("rows = %v", resp.Rows)
	}

	// Bare "annotations" defaults to the "default" repository.
	rec, resp = postQuery(t, h, `{
		"target": "annotations",
		"query": "ASK { <urn:item:1> <http://qurator.org/iq#containsEvidence> ?n . }"
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Ok == nil || !*resp.Ok {
		t.Fatalf("ASK response = %+v, want ok=true", resp)
	}
}

func TestQueryHandlerErrors(t *testing.T) {
	f := queryTestFramework(t)
	h := f.QueryHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}

	rec, _ = postQuery(t, h, `{"target": "annotations:nope", "query": "ASK { ?s ?p ?o . }"}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown repository status = %d: %s", rec.Code, rec.Body.String())
	}

	rec, _ = postQuery(t, h, `{"target": "provenance", "query": "SELECT WHERE"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("parse-error status = %d", rec.Code)
	}

	rec, _ = postQuery(t, h, `{"target": "provenance", "query": "   "}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty-query status = %d", rec.Code)
	}
}

func TestRunQueryMetrics(t *testing.T) {
	f := queryTestFramework(t)
	before := queryDuration.With("provenance").Count()
	res, err := f.RunQuery("provenance",
		"SELECT ?run WHERE { ?run <http://qurator.org/iq#inputSize> ?n . FILTER (?n > 25) }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 3 {
		t.Fatalf("rows = %d, want 3 (inputSize 30, 40, 50)", len(res.Bindings))
	}
	if got := queryDuration.With("provenance").Count(); got != before+1 {
		t.Errorf("duration histogram count = %d, want %d", got, before+1)
	}
}
