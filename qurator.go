// Package qurator is the public API of the Qurator quality-view
// framework, a from-scratch Go implementation of "Quality Views:
// Capturing and Exploiting the User Perspective on Data Quality"
// (Missier, Embury, Greenwood, Preece, Jin — VLDB 2006).
//
// A quality view is a personalised lens over a data set: a declarative
// XML specification of quality annotators, quality assertions (QAs) and
// condition/action pairs, compiled into an executable workflow and
// optionally embedded into a host data-processing workflow. The framework
// supplies the semantic IQ model, annotation repositories, a service
// fabric, the view compiler and a Taverna-style enactment engine.
//
// Typical use:
//
//	f := qurator.New()
//	f.DeployAssertion("my-score", myQA)           // implement + deploy a QA
//	compiled, err := f.CompileView(viewXML)       // compile a quality view
//	out, err := compiled.Run(ctx, items)          // apply the lens
//
// See examples/quickstart for a complete runnable tour and
// internal/ispider for the paper's proteomics case study.
package qurator

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/library"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/provenance"
	"qurator/internal/qa"
	"qurator/internal/qcache"
	"qurator/internal/qcube"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
)

// Re-exported types: the vocabulary a framework user needs without
// reaching into internal packages.
type (
	// Framework wires the Qurator components: the IQ ontology, annotation
	// repositories, the service registry, and the semantic binding
	// registry that maps IQ operator classes to deployed services.
	Framework struct {
		// Model is the IQ ontology (user-extensible, paper §3).
		Model *ontology.Ontology
		// Repositories holds the annotation stores ("cache" per-run,
		// "default" persistent, plus any the user adds).
		Repositories *annotstore.Registry
		// Services is the deployed-service registry.
		Services *services.Registry
		// Bindings is the semantic binding registry (paper §6).
		Bindings *binding.Registry
		// Library is the shared-view registry (paper further work iv).
		Library *library.Library
		// Provenance records every view execution as queryable RDF.
		Provenance *provenance.Log
		// metadata accumulates RDF statements about deployed components,
		// e.g. QA → quality-dimension classifications (paper §3).
		metadata *rdf.Graph

		// resilience, when set via SetResilience, makes remote clients
		// fault-tolerant and compiled views degradable.
		resilience *Resilience
		// dataplane, when set via SetDataPlane, makes compiled views
		// shard service invocations; cache is the shared response cache
		// (nil unless DataPlane.Cache).
		dataplane *DataPlane
		cache     *qcache.Cache
		// cube aggregates every numeric annotation written to a local
		// repository into daQ-style quality rollups (see Cube).
		cube *qcube.Cube
		// clients caches one HTTP client (connection pool + breakers)
		// per scavenged host, guarded by mu.
		mu      sync.Mutex
		clients map[string]*services.Client
	}

	// Item identifies a data item (an LSID-wrapped URI).
	Item = evidence.Item
	// Map is an annotation map — the value quality operators exchange.
	Map = evidence.Map
	// Value is a typed evidence value.
	Value = evidence.Value
	// QualityAssertion is the QA operator interface.
	QualityAssertion = ops.QualityAssertion
	// Annotator is the annotation operator interface.
	Annotator = ops.Annotator
	// Compiled is an executable quality workflow compiled from a view.
	Compiled = compiler.Compiled
	// Store is the common annotation-repository API (local or remote).
	Store = annotstore.Store
	// Repository is the in-memory annotation store implementation.
	Repository = annotstore.Repository
	// Annotation is one quality-evidence statement.
	Annotation = annotstore.Annotation
)

// New returns a framework with the IQ model loaded, the standard "cache"
// and "default" repositories, and empty service/binding registries.
func New() *Framework {
	model := ontology.NewIQModel()
	f := &Framework{
		Model:        model,
		Repositories: annotstore.NewRegistry(),
		Services:     services.NewRegistry(),
		Bindings:     binding.NewRegistry(model),
		Library:      library.New(model),
		Provenance:   provenance.NewLog(),
		metadata:     rdf.NewGraph(),
		cube:         qcube.New(0),
	}
	// Every local repository feeds the quality cube.
	for _, name := range f.Repositories.Names() {
		if repo, ok := f.Repositories.Get(name); ok {
			if local, ok := repo.(*annotstore.Repository); ok {
				f.observeRepository(local)
			}
		}
	}
	return f
}

// NewItem wraps an IRI string as a data item.
func NewItem(uri string) Item { return rdf.IRI(uri) }

// NewMap builds an annotation map over items.
func NewMap(items ...Item) *Map { return evidence.NewMap(items...) }

// Q expands a local name against the Qurator IQ namespace ("q:" prefix).
func Q(local string) rdf.Term { return ontology.Q(local) }

// DeployAssertion deploys a QA as a local service and binds its IQ class
// to it, making it resolvable from quality views.
func (f *Framework) DeployAssertion(name string, assertion QualityAssertion) error {
	if name == "" {
		return fmt.Errorf("qurator: empty service name")
	}
	f.Services.Add(&services.AssertionService{ServiceName: name, QA: assertion})
	return f.Bindings.Bind(binding.Binding{
		Concept: assertion.Class(),
		Kind:    binding.ServiceResource,
		Locator: "local:" + name,
	})
}

// DeployAnnotator deploys an annotation function as a local service bound
// to its IQ class. The annotator writes to whichever repository the
// invoking view's repositoryRef selects.
func (f *Framework) DeployAnnotator(name string, annotator Annotator) error {
	if name == "" {
		return fmt.Errorf("qurator: empty service name")
	}
	f.Services.Add(&services.AnnotatorService{
		ServiceName:  name,
		Annotator:    annotator,
		Repositories: f.Repositories,
	})
	return f.Bindings.Bind(binding.Binding{
		Concept: annotator.Class(),
		Kind:    binding.ServiceResource,
		Locator: "local:" + name,
	})
}

// DeployStandardLibrary deploys the paper's reusable QA library: the
// HR+MC score (q:UniversalPIScore2), the HR-only score
// (q:HRScoreAssertion), the three-way classifier (q:PIScoreClassifier)
// and the curation-credibility QA (q:CurationCredibility).
func (f *Framework) DeployStandardLibrary() error {
	deps := []struct {
		name      string
		assertion QualityAssertion
	}{
		{"HR_MC_score", qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC"))},
		{"HR_score", qa.NewHRScore(qvlang.TagKeyFor("HR"))},
		{"PIScoreClassifier", qa.NewPIScoreClassifier()},
		{"CurationCredibility", qa.NewCredibilityQA(qvlang.TagKeyFor("Credibility"))},
	}
	for _, d := range deps {
		if err := f.DeployAssertion(d.name, d.assertion); err != nil {
			return err
		}
	}
	return nil
}

// AddRepository registers an annotation repository under its name.
func (f *Framework) AddRepository(name string, persistent bool) *Repository {
	r := annotstore.New(name, persistent).WithModel(f.Model)
	f.observeRepository(r)
	f.Repositories.Add(r)
	return r
}

// Repository returns a registered annotation store by name.
func (f *Framework) Repository(name string) (Store, bool) {
	return f.Repositories.Get(name)
}

// CompileView parses, validates and compiles a quality-view XML document
// into an executable quality workflow.
func (f *Framework) CompileView(viewXML []byte) (*Compiled, error) {
	view, err := qvlang.Parse(viewXML)
	if err != nil {
		return nil, err
	}
	resolved, err := qvlang.Resolve(view, f.Model)
	if err != nil {
		return nil, err
	}
	c := &compiler.Compiler{
		Bindings:     f.Bindings,
		Resolver:     &binding.Resolver{Local: f.Services},
		Repositories: f.Repositories,
	}
	if r := f.resilience; r != nil {
		c.RetryAttempts = r.RetryAttempts
		c.RetryBackoff = r.RetryBackoff
		c.ProcessorTimeout = r.ProcessorTimeout
		c.Degraded = r.Degraded
	}
	if d := f.dataplane; d != nil {
		c.ShardSize = d.ShardSize
		c.MaxInflight = d.MaxInflight
		c.Cache = f.cache
	}
	compiled, err := c.Compile(resolved)
	if err != nil {
		return nil, err
	}
	compiled.Provenance = f.Provenance
	return compiled, nil
}

// CompileViewForStream compiles a view for streaming enactment
// (internal/stream): annotator classes with no bound service are stubbed
// with no-op annotators before compilation, since streamed items
// typically carry their evidence inline or find it already stored in a
// repository. Annotators that ARE deployed keep their bindings — each
// window invokes them as in batch enactment.
func (f *Framework) CompileViewForStream(viewXML []byte) (*Compiled, error) {
	view, err := qvlang.Parse(viewXML)
	if err != nil {
		return nil, err
	}
	resolved, err := qvlang.Resolve(view, f.Model)
	if err != nil {
		return nil, err
	}
	for _, ann := range resolved.Annotators {
		if _, err := f.Bindings.ResolveService(ann.Type); err == nil {
			continue
		}
		if err := f.DeployAnnotator("stream-stub:"+ann.Decl.ServiceName,
			ops.AnnotatorFunc{ClassIRI: ann.Type}); err != nil {
			return nil, err
		}
	}
	return f.CompileView(viewXML)
}

// ExecuteView compiles and runs a view over a data set in one call,
// clearing per-run caches first. The result maps output names
// ("<action>:<port>") to the surviving annotation maps.
func (f *Framework) ExecuteView(ctx context.Context, viewXML []byte, items []Item) (map[string]*Map, error) {
	compiled, err := f.CompileView(viewXML)
	if err != nil {
		return nil, err
	}
	f.Repositories.ClearCaches()
	return compiled.Run(ctx, items)
}

// Handler exposes the framework over HTTP (the cmd/quratord surface):
// the service fabric under /services and the annotation repositories
// under /repositories — the full Figure 5 deployment on one host.
func (f *Framework) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/services", services.Handler(f.Services))
	mux.Handle("/services/", services.Handler(f.Services))
	mux.Handle("/repositories", services.RepositoryHandler(f.Repositories))
	mux.Handle("/repositories/", services.RepositoryHandler(f.Repositories))
	return mux
}

// Scavenge discovers the services deployed on a remote Qurator host, adds
// proxies for them to the local registry, and binds their operator
// classes — Taverna's scavenger step (paper §6.1).
func (f *Framework) Scavenge(ctx context.Context, baseURL string) (int, error) {
	client := f.client(baseURL)
	found, err := client.Scavenge(ctx)
	if err != nil {
		return 0, err
	}
	for _, svc := range found {
		f.Services.Add(svc)
		info := svc.Describe()
		if info.Type == "" {
			continue
		}
		if err := f.Bindings.Bind(binding.Binding{
			Concept: rdf.IRI(info.Type),
			Kind:    binding.ServiceResource,
			Locator: "local:" + info.Name,
		}); err != nil {
			return 0, err
		}
	}
	return len(found), nil
}

// ScavengeRepositories discovers the annotation repositories hosted on a
// remote Qurator node and registers proxies for them locally, replacing
// same-named local stores — after this, views whose repositoryRef names a
// remote store read and write it over HTTP.
func (f *Framework) ScavengeRepositories(ctx context.Context, baseURL string) (int, error) {
	client := f.client(baseURL)
	repos, err := client.ScavengeRepositories(ctx)
	if err != nil {
		return 0, err
	}
	for _, r := range repos {
		f.Repositories.Add(r)
	}
	return len(repos), nil
}

// ClassifyAssertion records that a QA class addresses an IQ quality
// dimension (q:Accuracy, q:Completeness, q:Currency, q:Credibility or a
// user-added one) — the §3 mechanism that classifies QAs "for the purpose
// of ... fostering their reuse".
func (f *Framework) ClassifyAssertion(qaClass, dimension rdf.Term) error {
	if !f.Model.IsSubClassOf(qaClass, ontology.QualityAssertion) {
		return fmt.Errorf("qurator: %v is not a QualityAssertion subclass", qaClass)
	}
	if !f.Model.IsInstanceOf(dimension, ontology.QualityProperty) {
		return fmt.Errorf("qurator: %v is not a quality dimension", dimension)
	}
	_, err := f.metadata.Add(rdf.T(qaClass, ontology.AddressesProperty, dimension))
	return err
}

// DimensionsOf returns the quality dimensions recorded for a QA class.
func (f *Framework) DimensionsOf(qaClass rdf.Term) []rdf.Term {
	return f.metadata.Objects(qaClass, ontology.AddressesProperty)
}

// AssertionsAddressing returns the QA classes recorded under a dimension.
func (f *Framework) AssertionsAddressing(dimension rdf.Term) []rdf.Term {
	return f.metadata.Subjects(ontology.AddressesProperty, dimension)
}

// PublishView validates and publishes a quality view to the framework's
// shared library.
func (f *Framework) PublishView(entry library.Entry) (*library.Entry, error) {
	return f.Library.Publish(entry)
}

// FindApplicableViews returns the published views runnable with the given
// available evidence types (the §5.1 applicability rule).
func (f *Framework) FindApplicableViews(available []rdf.Term) []*library.Entry {
	return f.Library.FindApplicable(available)
}

// ExecuteSharedView compiles and runs a published view by name.
func (f *Framework) ExecuteSharedView(ctx context.Context, name string, items []Item) (map[string]*Map, error) {
	entry, ok := f.Library.Get(name)
	if !ok {
		return nil, fmt.Errorf("qurator: no published view %q", name)
	}
	return f.ExecuteView(ctx, []byte(entry.ViewXML), items)
}

// PaperViewXML is the ready-to-compile §5.1 quality view.
const PaperViewXML = qvlang.PaperViewXML
