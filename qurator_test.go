package qurator

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
)

// deployTestWorld deploys the standard library plus an annotator that
// tags items with synthetic HR/Coverage evidence: strong for even
// indices, weak for odd.
func deployTestWorld(t *testing.T) (*Framework, []Item) {
	t.Helper()
	f := New()
	if err := f.DeployStandardLibrary(); err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 10)
	for i := range items {
		items[i] = NewItem(fmt.Sprintf("urn:lsid:test.org:item:%d", i))
	}
	strength := map[Item]float64{}
	for i, it := range items {
		if i%2 == 0 {
			strength[it] = 0.9
		} else {
			strength[it] = 0.1
		}
	}
	err := f.DeployAnnotator("ImprintOutputAnnotator", ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, it := range items {
				s := strength[it]
				for _, a := range []annotstore.Annotation{
					{Item: it, Type: ontology.HitRatio, Value: evidence.Float(s)},
					{Item: it, Type: ontology.Coverage, Value: evidence.Float(s)},
					{Item: it, Type: ontology.Masses, Value: evidence.Int(12)},
					{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(6)},
				} {
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, items
}

func TestExecutePaperView(t *testing.T) {
	f, items := deployTestWorld(t)
	out, err := f.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatalf("ExecuteView: %v", err)
	}
	accepted := out["filter_top_k_score:accepted"]
	if accepted == nil {
		t.Fatalf("outputs = %v", out)
	}
	if accepted.Len() != 5 {
		t.Errorf("accepted %d items, want the 5 strong ones", accepted.Len())
	}
	for _, it := range accepted.Items() {
		if accepted.Class(it, ontology.PIScoreClassification).IsZero() {
			t.Errorf("%v lacks classification", it)
		}
	}
}

func TestCompileOnceRunManyWithConditionEdits(t *testing.T) {
	f, items := deployTestWorld(t)
	compiled, err := f.CompileView([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	f.Repositories.ClearCaches()
	strict, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if err := compiled.SetFilterCondition("filter top k score", "HR_MC > 0"); err != nil {
		t.Fatal(err)
	}
	loose, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if !(loose["filter_top_k_score:accepted"].Len() > strict["filter_top_k_score:accepted"].Len()) {
		t.Error("loosening the condition should keep more items")
	}
}

func TestDeployValidation(t *testing.T) {
	f := New()
	if err := f.DeployAssertion("", nil); err == nil {
		t.Error("empty name should fail")
	}
	if err := f.DeployAnnotator("", nil); err == nil {
		t.Error("empty name should fail")
	}
}

func TestCompileViewErrors(t *testing.T) {
	f := New()
	if _, err := f.CompileView([]byte("not xml")); err == nil {
		t.Error("bad XML should fail")
	}
	// Valid view but nothing deployed/bound.
	if _, err := f.CompileView([]byte(PaperViewXML)); err == nil {
		t.Error("unbound operators should fail to compile")
	}
}

func TestAddRepositoryValidatesAgainstModel(t *testing.T) {
	f := New()
	repo := f.AddRepository("uniprot-cred", true)
	if got, ok := f.Repository("uniprot-cred"); !ok || got != repo {
		t.Fatal("repository not registered")
	}
	it := NewItem("urn:lsid:uniprot.org:uniprot:P1")
	if err := repo.Put(Annotation{Item: it, Type: ontology.EvidenceCode, Value: evidence.String_("TAS")}); err != nil {
		t.Errorf("valid evidence rejected: %v", err)
	}
	if err := repo.Put(Annotation{Item: it, Type: rdf.IRI("urn:junk"), Value: evidence.Float(1)}); err == nil {
		t.Error("non-evidence type should be rejected (model attached)")
	}
}

func TestScavengeRemoteServices(t *testing.T) {
	// Host a framework's services; a second framework scavenges them and
	// compiles a view against the discovered implementations.
	server, items := deployTestWorld(t)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	client := New()
	n, err := client.Scavenge(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Scavenge: %v", err)
	}
	if n < 5 {
		t.Fatalf("scavenged %d services", n)
	}
	// NOTE: the annotator proxy writes to the *server's* repositories;
	// the data-enrichment step runs locally, so this client-side compile
	// only works for views whose evidence the client can reach. Here we
	// verify scavenged QAs are invocable by compiling a QA-only view.
	viewXML := `<QualityView name="remote-qa">
	  <QualityAssertion servicename="PIScoreClassifier" servicetype="q:PIScoreClassifier"
	                    tagsemtype="q:PIScoreClassification" tagname="ScoreClass" tagsyntype="q:class">
	    <variables>
	      <var variablename="hr" evidence="q:HitRatio"/>
	      <var variablename="mc" evidence="q:Coverage"/>
	    </variables>
	  </QualityAssertion>
	  <action name="keep"><filter><condition>ScoreClass in q:high, q:mid</condition></filter></action>
	</QualityView>`
	compiled, err := client.CompileView([]byte(viewXML))
	if err != nil {
		t.Fatalf("CompileView after scavenge: %v", err)
	}
	// Seed the client's cache with evidence so enrichment has data.
	cache := client.Repositories.MustGet("cache")
	for i, it := range items {
		v := 0.1
		if i%2 == 0 {
			v = 0.9
		}
		cache.Put(annotstore.Annotation{Item: it, Type: ontology.HitRatio, Value: evidence.Float(v)})
		cache.Put(annotstore.Annotation{Item: it, Type: ontology.Coverage, Value: evidence.Float(v)})
	}
	out, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("Run with remote QA: %v", err)
	}
	if out["keep:accepted"].Len() == 0 {
		t.Error("remote QA view kept nothing")
	}
}

func TestTagKeyHelperConsistency(t *testing.T) {
	// The facade's standard library writes under qvlang tag keys; verify
	// the view layer and facade agree.
	if qvlang.TagKeyFor("HR_MC") != Q("tag/HR_MC") {
		t.Error("tag key derivation drifted")
	}
}
