package qurator

import (
	"net/http"
	"time"

	"qurator/internal/compiler"
	"qurator/internal/resilience"
	"qurator/internal/services"
)

// Resilience configures the framework's fault tolerance for distributed
// deployments (the Figure 5 world where annotators, QAs and repositories
// live on other hosts). It layers three defences:
//
//   - Transport: every HTTP call to a remote host retries transient
//     failures with jittered backoff under a retry budget, trips a
//     per-endpoint circuit breaker, and propagates deadlines
//     (internal/resilience.Transport). Annotation writes are never
//     replayed at this layer.
//   - Processor: each compiled quality-service processor is bounded by
//     ProcessorTimeout and re-invoked up to RetryAttempts times
//     (workflow.Timeout / workflow.Retry) — application-level retries,
//     safe for annotation writes because repository puts are
//     set-semantic.
//   - Enactment: Degraded selects what a run does when a service has
//     failed for good — abort (off), reject the undecided items
//     (fail-closed), wave them through (fail-open), or park them on a
//     quarantine output.
type Resilience struct {
	// Transport is the HTTP retry/breaker policy. The zero value is
	// normalised to sane defaults (3 attempts, 25ms–2s backoff, 20%
	// retry budget, breaker at 5 consecutive failures).
	Transport resilience.Policy
	// BaseTransport underlies the resilient transport (nil =
	// http.DefaultTransport). Tests inject a chaos transport here.
	BaseTransport http.RoundTripper
	// RetryAttempts re-invokes a failed quality-service processor
	// (values < 2 disable processor-level retry).
	RetryAttempts int
	// RetryBackoff is the initial sleep between processor retries.
	RetryBackoff time.Duration
	// ProcessorTimeout bounds each quality-service invocation.
	ProcessorTimeout time.Duration
	// Degraded is the degraded-enactment policy (default DegradeOff).
	Degraded DegradedMode
}

// Degraded-enactment vocabulary, re-exported from the compiler.
type (
	// DegradedMode selects the routing of undecided items after a
	// quality service failed mid-enactment.
	DegradedMode = compiler.DegradedMode
	// FailureLog collects the failures survived during one enactment;
	// attach one with WithFailureLog to observe what degraded.
	FailureLog = compiler.FailureLog
)

const (
	// DegradeOff aborts the enactment on service failure (default).
	DegradeOff = compiler.DegradeOff
	// DegradeFailClosed rejects items whose evidence is unknown.
	DegradeFailClosed = compiler.DegradeFailClosed
	// DegradeFailOpen accepts items whose evidence is unknown.
	DegradeFailOpen = compiler.DegradeFailOpen
	// DegradeQuarantine parks undecided items on a "quarantine" output.
	DegradeQuarantine = compiler.DegradeQuarantine
)

// QuarantineOutput is the extra Run output under DegradeQuarantine.
const QuarantineOutput = compiler.QuarantineOutput

// DegradedEvidence is the marker annotation a degraded run sets on every
// item whose routing was decided by policy rather than by evidence; its
// value names the failed quality service.
var DegradedEvidence = compiler.DegradedEvidence

// NewFailureLog, WithFailureLog and FailureLogFrom re-export the
// degraded-run observation API.
var (
	NewFailureLog  = compiler.NewFailureLog
	WithFailureLog = compiler.WithFailureLog
	FailureLogFrom = compiler.FailureLogFrom
)

// ParseDegradedMode parses "off", "fail-closed", "fail-open" or
// "quarantine".
func ParseDegradedMode(s string) (DegradedMode, error) {
	return compiler.ParseDegradedMode(s)
}

// SetResilience installs a fault-tolerance configuration: subsequent
// Scavenge/ScavengeRepositories calls build resilient HTTP clients and
// subsequent CompileView calls emit guarded processors. Already-built
// clients and compiled views are unaffected.
func (f *Framework) SetResilience(r Resilience) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resilience = &r
	f.clients = nil // rebuild with the new policy on next use
}

// client returns the (cached) HTTP client for a remote Qurator host,
// resilient when a Resilience configuration is installed. Caching keeps
// one connection pool — and one set of circuit breakers — per host.
func (f *Framework) client(baseURL string) *services.Client {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.clients[baseURL]; ok {
		return c
	}
	var c *services.Client
	if f.resilience != nil {
		c = services.NewResilientClient(baseURL, f.resilience.Transport, f.resilience.BaseTransport)
	} else {
		c = &services.Client{BaseURL: baseURL}
	}
	if f.clients == nil {
		f.clients = make(map[string]*services.Client)
	}
	f.clients[baseURL] = c
	return c
}

// TransportFor returns the resilient transport serving a scavenged host
// (for breaker observability: TransportFor(url).BreakerStates()), or nil
// when no resilient client exists for it.
func (f *Framework) TransportFor(baseURL string) *resilience.Transport {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.clients[baseURL]; ok {
		return c.ResilientTransport()
	}
	return nil
}

// BreakerStates merges the circuit-breaker states of every cached remote
// client, keyed "host endpoint" → closed/open/half-open. Readiness
// endpoints report this map so "which upstream is this node shunning"
// is one GET away.
func (f *Framework) BreakerStates() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string)
	for base, c := range f.clients {
		rt := c.ResilientTransport()
		if rt == nil {
			continue
		}
		for ep, st := range rt.BreakerStates() {
			out[base+" "+ep] = st.String()
		}
	}
	return out
}
