package qurator

import (
	"context"
	"strings"
	"testing"

	"qurator/internal/library"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func TestClassifyAssertionAndLookup(t *testing.T) {
	f := New()
	if err := f.ClassifyAssertion(ontology.UniversalPIScore2, ontology.Accuracy); err != nil {
		t.Fatalf("ClassifyAssertion: %v", err)
	}
	if err := f.ClassifyAssertion(ontology.CurationCredibility, ontology.Credibility); err != nil {
		t.Fatal(err)
	}
	dims := f.DimensionsOf(ontology.UniversalPIScore2)
	if len(dims) != 1 || dims[0] != ontology.Accuracy {
		t.Errorf("DimensionsOf = %v", dims)
	}
	qas := f.AssertionsAddressing(ontology.Credibility)
	if len(qas) != 1 || qas[0] != ontology.CurationCredibility {
		t.Errorf("AssertionsAddressing = %v", qas)
	}
	// Invalid classifications are rejected.
	if err := f.ClassifyAssertion(ontology.HitRatio, ontology.Accuracy); err == nil {
		t.Error("evidence type should not classify as a QA")
	}
	if err := f.ClassifyAssertion(ontology.UniversalPIScore2, ontology.HitRatio); err == nil {
		t.Error("non-dimension should be rejected")
	}
}

func TestPublishFindExecuteSharedView(t *testing.T) {
	// One peer publishes; the consumer discovers by available evidence
	// and runs the shared view against its own deployment.
	f, items := deployTestWorld(t)
	if _, err := f.PublishView(library.Entry{
		Name:       "protein-id-quality",
		Author:     "peer-lab",
		Dimensions: []rdf.Term{ontology.Accuracy},
		ViewXML:    PaperViewXML,
	}); err != nil {
		t.Fatalf("PublishView: %v", err)
	}

	applicable := f.FindApplicableViews(nil)
	if len(applicable) != 1 || applicable[0].Name != "protein-id-quality" {
		t.Fatalf("FindApplicableViews = %v", applicable)
	}

	out, err := f.ExecuteSharedView(context.Background(), "protein-id-quality", items)
	if err != nil {
		t.Fatalf("ExecuteSharedView: %v", err)
	}
	if out["filter_top_k_score:accepted"].Len() != 5 {
		t.Errorf("shared view kept %d items", out["filter_top_k_score:accepted"].Len())
	}
	if _, err := f.ExecuteSharedView(context.Background(), "ghost", items); err == nil {
		t.Error("unknown shared view should fail")
	}
}

func TestFrameworkProvenanceRecordsRuns(t *testing.T) {
	f, items := deployTestWorld(t)
	if _, err := f.ExecuteView(context.Background(), []byte(PaperViewXML), items); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecuteView(context.Background(), []byte(PaperViewXML), items[:4]); err != nil {
		t.Fatal(err)
	}
	if f.Provenance.Len() != 2 {
		t.Fatalf("provenance recorded %d runs, want 2", f.Provenance.Len())
	}
	last, ok := f.Provenance.LastRun()
	if !ok || last.InputSize != 4 {
		t.Errorf("last run = %+v, %v", last, ok)
	}
	// The history is queryable with SPARQL.
	res, err := f.Provenance.Query(`PREFIX q: <http://qurator.org/iq#>
		SELECT ?run WHERE { ?run a q:QualityProcessRun . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 2 {
		t.Errorf("SPARQL over provenance = %d rows", len(res.Bindings))
	}
}

func TestCompiledWorkflowToDOT(t *testing.T) {
	f, _ := deployTestWorld(t)
	compiled, err := f.CompileView([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	dot := compiled.Workflow.ToDOT()
	for _, want := range []string{
		"DataEnrichment",
		"ConsolidateAssertions",
		"Annotator:ImprintOutputAnnotator",
		`style=dashed, label="ctrl"`, // annotator → DE control link
		"digraph",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}
