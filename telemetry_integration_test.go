package qurator

import (
	"context"
	"strings"
	"testing"

	"qurator/internal/telemetry"
)

// TestEnactmentTraceInProvenance is the observability acceptance test:
// enacting the §5.1 paper view under a trace recorder yields a span
// tree (enactment → workflow → processors) whose root trace ID is
// queryable back out of the RDF provenance log via q:traceID — the
// bridge from the paper's provenance model to live telemetry.
func TestEnactmentTraceInProvenance(t *testing.T) {
	f, items := deployTestWorld(t)
	rec := telemetry.NewRecorder(8)
	ctx := telemetry.WithRecorder(context.Background(), rec)

	compiled, err := f.CompileView([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compiled.Run(ctx, items); err != nil {
		t.Fatalf("Run: %v", err)
	}

	traces := rec.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tree := traces[0]
	if tree.Root == nil {
		t.Fatalf("trace %s has no root span (orphans: %d)", tree.TraceID, len(tree.Orphans))
	}
	if !strings.HasPrefix(tree.Root.Name, "enact:") {
		t.Errorf("root span = %q, want enact:<view>", tree.Root.Name)
	}
	var wf *telemetry.SpanTree
	for _, child := range tree.Root.Children {
		if strings.HasPrefix(child.Name, "workflow:") {
			wf = child
		}
	}
	if wf == nil {
		t.Fatalf("no workflow span under root; children: %v", spanNames(tree.Root.Children))
	}
	if len(wf.Children) == 0 {
		t.Error("workflow span has no processor child spans")
	}
	for _, proc := range wf.Children {
		if proc.TraceID != tree.TraceID {
			t.Errorf("processor span %q in trace %s, want %s", proc.Name, proc.TraceID, tree.TraceID)
		}
		if proc.End.Before(proc.Start) {
			t.Errorf("processor span %q ends before it starts", proc.Name)
		}
	}

	// The trace ID is queryable from the provenance graph.
	res, err := f.Provenance.Query(`PREFIX q: <http://qurator.org/iq#>
		SELECT ?t WHERE { ?run q:traceID ?t . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 {
		t.Fatalf("q:traceID query returned %d rows, want 1", len(res.Bindings))
	}
	if got := res.Bindings[0]["t"].Value(); got != tree.TraceID {
		t.Errorf("provenance q:traceID = %q, want recorder root trace %q", got, tree.TraceID)
	}

	// And LastRun round-trips it through the Record struct.
	last, ok := f.Provenance.LastRun()
	if !ok || last.TraceID != tree.TraceID {
		t.Errorf("LastRun trace = %q, %v; want %q", last.TraceID, ok, tree.TraceID)
	}
}

func spanNames(trees []*telemetry.SpanTree) []string {
	names := make([]string, len(trees))
	for i := range trees {
		names[i] = trees[i].Name
	}
	return names
}
